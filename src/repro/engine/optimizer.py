"""Cost-based planning (Section 4.6).

The optimizer turns a :class:`QueryBlock` into a physical operator
tree:

1. uncorrelated scalar subqueries are evaluated eagerly;
2. WHERE conjuncts are classified into single-source scan filters,
   equi-join edges and residual predicates;
3. base cardinalities come from the tile statistics — key-path
   frequency counters give the presence fraction (crucial on combined
   relations, where one physical table holds many document types) and
   HyperLogLog sketches give distinct counts for equality and join
   estimates;
4. join orders are enumerated with dynamic programming over connected
   subsets, minimizing the sum of intermediate cardinalities (C_out);
   with ``use_statistics=False`` the FROM-clause order is kept, which
   reproduces the bad plans the paper observes for statistics-blind
   systems;
5. every scan gets its tile-skipping paths: the key paths whose absence
   in a tile makes all its predicates non-true (Section 4.8).
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.jsonpath import KeyPath
from repro.core.types import ColumnType
from repro.engine import expressions as ex
from repro.engine.operators import (
    ChainOp,
    FilterOp,
    HashAggregateOp,
    HashJoinOp,
    JoinKind,
    LimitOp,
    Operator,
    ProjectOp,
    SortOp,
    TopKOp,
)
from repro.engine.plan import (
    DerivedSource,
    QueryBlock,
    QueryOptions,
    ScanSource,
    Source,
    alias_of_column,
)
from repro.engine.scan import ROWID_PATH, RangePrune, TableScan
from repro.errors import ExecutionError


class PlannedScan:
    """Bookkeeping per source during planning."""

    def __init__(self, source: Source):
        self.source = source
        self.filters: List[ex.Expression] = list(source.filters)
        self.skip_paths: Set[KeyPath] = set()
        self.cardinality: float = 1.0


class Planner:
    def __init__(self, options: Optional[QueryOptions] = None):
        self.options = options or QueryOptions()
        self.scans: List[TableScan] = []
        #: kernel-gated operators (joins, aggregates, sorts) planned for
        #: this query; the executor merges their kernel_rows /
        #: fallback_rows counters into the result, mirroring self.scans
        self.kernel_ops: List[Operator] = []
        #: filled by plan_block for introspection / tests
        self.last_join_order: List[str] = []

    def _kernel_op(self, op: Operator) -> Operator:
        """Register a kernel-capable operator for counter collection."""
        self.kernel_ops.append(op)
        return op

    # ------------------------------------------------------------------

    def plan_block(self, block: QueryBlock, raw: bool = False) -> Operator:
        self._resolve_scalar_subqueries(block)
        planned = {source.alias: PlannedScan(source)
                   for source in block.sources}
        join_edges, residuals = self._classify_predicates(block, planned)
        self._derive_skip_paths(block, planned, join_edges, residuals)
        for item in planned.values():
            item.cardinality = self._estimate_source(item)

        tree, tree_aliases = self._join_tree(block, planned, join_edges)

        for spec in block.left_joins:
            right_plan = self._plan_source(spec.source,
                                           planned.get(spec.source.alias))
            left_keys = [outer for outer, _inner in spec.keys]
            right_keys = [inner for _outer, inner in spec.keys]
            right_schema = self._source_schema(spec.source)
            tree = self._kernel_op(HashJoinOp(
                tree, right_plan, left_keys, right_keys,
                JoinKind.LEFT, residual=spec.residual,
                right_schema=right_schema,
                enable_kernels=self.options.enable_kernels))

        for residual in residuals:
            if isinstance(tree, TableScan):
                # a residual directly above a scan is row-local by
                # construction: push it into the scan (where the
                # late-materialization split can use it) and keep the
                # FilterOp as a pre-applied marker so plan shape and
                # EXPLAIN output stay stable
                tree.add_predicate(residual)
                tree = FilterOp(tree, residual, pre_applied=True)
            else:
                tree = FilterOp(tree, residual)

        for subquery in block.subquery_filters:
            inner = self.plan_block(subquery.block, raw=subquery.raw)
            tree = self._kernel_op(HashJoinOp(
                tree, inner, subquery.outer_keys,
                subquery.inner_keys, subquery.kind,
                residual=subquery.residual,
                enable_kernels=self.options.enable_kernels))

        if raw:
            return tree

        if block.is_aggregated:
            tree = self._kernel_op(HashAggregateOp(
                tree, block.group_keys, block.aggregates,
                enable_kernels=self.options.enable_kernels))
            if block.having is not None:
                tree = FilterOp(tree, block.having)
        if block.select:
            tree = ProjectOp(tree, block.select)
        if block.union_blocks:
            branches = [tree]
            main_names = block.output_names()
            for union_block in block.union_blocks:
                sub = self.plan_block(union_block)
                renames = [
                    (main_name, ex.ColumnRef(sub_name, sub_expr.result_type))
                    for main_name, (sub_name, sub_expr)
                    in zip(main_names, union_block.select)
                ]
                branches.append(ProjectOp(sub, renames))
            tree = ChainOp(branches)
        if block.order_by and block.limit is not None:
            tree = self._kernel_op(TopKOp(
                tree, block.order_by, block.limit,
                enable_kernels=self.options.enable_kernels))
        elif block.order_by:
            tree = self._kernel_op(SortOp(
                tree, block.order_by,
                enable_kernels=self.options.enable_kernels))
        elif block.limit is not None:
            tree = LimitOp(tree, block.limit)
        return tree

    # ------------------------------------------------------------------
    # scalar subqueries

    def _resolve_scalar_subqueries(self, block: QueryBlock) -> None:
        from repro.sql.binder import UnresolvedScalarExpr

        def visit(expr: ex.Expression) -> None:
            if isinstance(expr, UnresolvedScalarExpr) and \
                    not hasattr(expr, "resolved_value"):
                sub_planner = Planner(self.options)
                result = sub_planner.plan_block(expr.block).materialize()
                self.scans.extend(sub_planner.scans)
                self.kernel_ops.extend(sub_planner.kernel_ops)
                if result is None or result.length == 0:
                    value = None
                else:
                    value = result.column(expr.block.select[0][0]).value(0)
                expr.resolved_value = value

                def evaluate(batch, _value=value, _type=expr.result_type):
                    return ex.Literal(_value, _type).evaluate(batch)

                expr.evaluate = evaluate  # type: ignore[assignment]
            for child in expr.children():
                visit(child)

        for predicate in block.predicates:
            visit(predicate)
        for _name, expr in block.select:
            visit(expr)
        if block.having is not None:
            visit(block.having)
        for source in block.sources:
            for flt in source.filters:
                visit(flt)

    # ------------------------------------------------------------------
    # predicate classification

    def _classify_predicates(self, block: QueryBlock,
                             planned: Dict[str, PlannedScan]):
        join_edges: List[Tuple[str, str, ex.Expression, ex.Expression]] = []
        residuals: List[ex.Expression] = []
        for predicate in block.predicates:
            aliases = {alias_of_column(name)
                       for name in predicate.referenced_columns()}
            aliases &= set(planned)
            if len(aliases) == 1:
                planned[next(iter(aliases))].filters.append(predicate)
            elif (len(aliases) == 2 and isinstance(predicate, ex.Comparison)
                    and predicate.op == "="):
                left_aliases = {alias_of_column(name) for name
                                in predicate.left.referenced_columns()}
                right_aliases = {alias_of_column(name) for name
                                 in predicate.right.referenced_columns()}
                if len(left_aliases) == 1 and len(right_aliases) == 1:
                    join_edges.append((next(iter(left_aliases)),
                                       next(iter(right_aliases)),
                                       predicate.left, predicate.right))
                else:
                    residuals.append(predicate)
            elif not aliases:
                # constant predicate: apply to the first scan
                residuals.append(predicate)
            else:
                residuals.append(predicate)
        return join_edges, residuals

    def _derive_skip_paths(self, block, planned, join_edges, residuals) -> None:
        """Section 4.8: a predicate that skips NULLs or evaluates them
        as false makes every key path it rejects a skip candidate."""

        def add(names: Set[str]) -> None:
            for name in names:
                alias = alias_of_column(name)
                item = planned.get(alias)
                if item is None or not isinstance(item.source, ScanSource):
                    continue
                path = item.source.request_paths().get(name)
                if path is not None and path != ROWID_PATH:
                    item.skip_paths.add(path)

        for item in planned.values():
            for flt in item.filters:
                add(flt.null_rejected_refs())
        for _a, _b, left, right in join_edges:
            add(left.null_rejected_refs())
            add(right.null_rejected_refs())
        for residual in residuals:
            add(residual.null_rejected_refs())
        for subquery in block.subquery_filters:
            if subquery.kind == JoinKind.SEMI:
                for key in subquery.outer_keys:
                    add(key.null_rejected_refs())
        # Section 4.8's aggregate case: a global aggregation whose
        # aggregates all skip NULLs (sum/avg/min/max/count(x)) gains
        # nothing from tiles lacking the aggregated paths.  Restricted
        # to single-source blocks without grouping — with GROUP BY the
        # all-NULL group would be observable, and with joins a skipped
        # row could still feed another table's aggregate.
        null_skipping = {"sum", "avg", "min", "max", "count",
                         "count_distinct"}
        if (not block.group_keys and block.aggregates
                and len(block.sources) == 1
                and not block.left_joins and not block.subquery_filters
                and all(spec.func in null_skipping
                        for spec in block.aggregates)):
            for spec in block.aggregates:
                if spec.expr is not None:
                    add(spec.expr.null_rejected_refs())

    # ------------------------------------------------------------------
    # cardinality estimation

    def _estimate_source(self, item: PlannedScan) -> float:
        source = item.source
        if isinstance(source, DerivedSource):
            return self._estimate_block(source.block)
        base = float(source.relation.row_count)
        if not self.options.use_statistics:
            return base
        if self.options.enable_sampling and item.filters:
            sampled = self._sampled_selectivity(item)
            if sampled is not None:
                return max(1.0, base * sampled)
        stats = source.relation.statistics
        presence = 1.0
        for path in item.skip_paths:
            presence = min(presence, stats.presence_fraction(path))
        selectivity = 1.0
        for predicate in item.filters:
            selectivity *= self._predicate_selectivity(source, predicate)
        return max(1.0, base * presence * selectivity)

    def _sampled_selectivity(self, item: PlannedScan) -> Optional[float]:
        """Section 4.6: evaluate the scan's predicates on a static,
        evenly-spaced document sample.  Subsumes key presence and value
        selectivity in one number, and works for predicates no sketch
        covers (LIKE, CASE, functions)."""
        source = item.source
        relation = source.relation
        total = relation.row_count
        if total == 0:
            return None
        sample_size = min(self.options.sample_size, total)
        # deterministic pseudo-random sample: evenly-spaced rows would
        # alias with periodic data, and a fixed seed keeps plans stable
        import random

        rng = random.Random(0x9E3779B9 ^ total)
        rows = sorted(rng.sample(range(total), sample_size))
        batch = _sample_batch(relation, source, rows)
        if batch is None:
            return None
        matched = np.ones(len(rows), dtype=bool)
        for predicate in item.filters:
            verdict = predicate.evaluate(batch)
            matched &= verdict.data.astype(bool) & ~verdict.null_mask
        hits = int(np.count_nonzero(matched))
        # clamp: an empty sample still leaves a sliver of probability
        return max(hits, 0.5) / len(rows)

    def _estimate_block(self, block: QueryBlock) -> float:
        total = 1.0
        for source in block.sources:
            if isinstance(source, ScanSource):
                total *= max(1.0, source.relation.row_count * 0.1)
            else:
                total *= self._estimate_block(source.block)
        if block.is_aggregated:
            total = max(1.0, total * 0.1)
        return total

    def _predicate_selectivity(self, source: ScanSource,
                               predicate: ex.Expression) -> float:
        stats = source.relation.statistics
        paths = source.request_paths()
        if isinstance(predicate, ex.Comparison):
            column, literal = _column_and_literal(predicate)
            if column is None:
                return 0.3
            path = paths.get(column.name)
            if path is None:
                return 0.3
            if predicate.op == "=":
                return stats.equality_selectivity(path)
            if predicate.op == "<>":
                return 1.0 - stats.equality_selectivity(path)
            value = literal.value if literal is not None else None
            if predicate.op in ("<", "<="):
                return stats.range_selectivity(path, high=value)
            return stats.range_selectivity(path, low=value)
        if isinstance(predicate, ex.BoolAnd):
            return (self._predicate_selectivity(source, predicate.left)
                    * self._predicate_selectivity(source, predicate.right))
        if isinstance(predicate, ex.BoolOr):
            left = self._predicate_selectivity(source, predicate.left)
            right = self._predicate_selectivity(source, predicate.right)
            return min(1.0, left + right - left * right)
        if isinstance(predicate, ex.Not):
            return max(0.0, 1.0 - self._predicate_selectivity(
                source, predicate.operand))
        if isinstance(predicate, ex.IsNull):
            return 1.0 if predicate.negated else 0.1
        if isinstance(predicate, ex.InList):
            refs = list(predicate.referenced_columns())
            if len(refs) == 1 and refs[0] in paths:
                ndv = stats.distinct(paths[refs[0]])
                return min(1.0, len(predicate.values) / max(1.0, ndv))
            return 0.3
        if isinstance(predicate, ex.Like):
            return 0.75 if predicate.negated else 0.25
        return 0.5

    def _edge_ndv(self, planned: Dict[str, PlannedScan], alias: str,
                  key: ex.Expression) -> float:
        item = planned[alias]
        if isinstance(item.source, DerivedSource):
            return max(1.0, item.cardinality)
        refs = list(key.referenced_columns())
        if len(refs) == 1:
            path = item.source.request_paths().get(refs[0])
            if path is not None and path != ROWID_PATH:
                return max(1.0, item.source.relation.statistics.distinct(path))
            if path == ROWID_PATH:
                return max(1.0, item.source.relation.row_count)
        return max(1.0, item.cardinality)

    # ------------------------------------------------------------------
    # fragment planning front half (engine/fragments.py)

    def fragment_inputs(self, block: QueryBlock):
        """Classify predicates, derive skip paths and estimate base
        cardinalities without building any operators — the shared
        front half of :meth:`plan_block`.  The fragment planner calls
        this so shard-side planning and the fused single-node plan
        make identical ordering/orientation decisions from the same
        statistics."""
        planned = {source.alias: PlannedScan(source)
                   for source in block.sources}
        join_edges, residuals = self._classify_predicates(block, planned)
        self._derive_skip_paths(block, planned, join_edges, residuals)
        for item in planned.values():
            item.cardinality = self._estimate_source(item)
        return planned, join_edges, residuals

    def join_order(self, aliases: Sequence[str],
                   planned: Dict[str, PlannedScan],
                   join_edges) -> List[str]:
        """The alias sequence :meth:`_join_tree` would realize: C_out
        DP over connected subsets under ``use_statistics`` for up to
        11 aliases, the syntactic FROM order otherwise."""
        if self.options.use_statistics and len(aliases) <= 11:
            return self._dp_order(list(aliases), planned, join_edges)
        return self._syntactic_order(list(aliases), join_edges)

    def probe_build_orientation(self, order: Sequence[str],
                                planned: Dict[str, PlannedScan]
                                ) -> Tuple[str, str]:
        """``(probe, build)`` sides :meth:`_build_join_tree` realizes
        for a two-source order — the 4x swap rule, verbatim: the new
        source probes only when it is estimated well larger than the
        tree, otherwise it is the hash build side."""
        first, second = order
        if planned[second].cardinality > planned[first].cardinality * 4:
            return second, first
        return first, second

    # ------------------------------------------------------------------
    # join ordering

    def _join_tree(self, block: QueryBlock, planned: Dict[str, PlannedScan],
                   join_edges) -> Tuple[Operator, FrozenSet[str]]:
        aliases = [source.alias for source in block.sources]
        if not aliases:
            raise ExecutionError("query block without sources")
        if len(aliases) == 1:
            alias = aliases[0]
            return self._plan_source_with_filters(planned[alias]), \
                frozenset({alias})

        if self.options.use_statistics and len(aliases) <= 11:
            order = self._dp_order(aliases, planned, join_edges)
        else:
            order = self._syntactic_order(aliases, join_edges)
        self.last_join_order = list(order)
        return self._build_join_tree(order, planned, join_edges)

    def _syntactic_order(self, aliases, join_edges) -> List[str]:
        return list(aliases)

    def _dp_order(self, aliases, planned, join_edges) -> List[str]:
        """DP over subsets, C_out cost; returns an alias sequence that a
        left-deep fold realizes."""
        n = len(aliases)
        index = {alias: i for i, alias in enumerate(aliases)}
        connects: Dict[int, Set[int]] = {i: set() for i in range(n)}
        for a, b, _l, _r in join_edges:
            if a in index and b in index:
                connects[index[a]].add(index[b])
                connects[index[b]].add(index[a])

        best: Dict[FrozenSet[int], Tuple[float, float, List[str]]] = {}
        for i, alias in enumerate(aliases):
            best[frozenset({i})] = (0.0, planned[alias].cardinality, [alias])
        for size in range(2, n + 1):
            for subset in itertools.combinations(range(n), size):
                fs = frozenset(subset)
                entry = None
                for member in subset:
                    rest = fs - {member}
                    if rest not in best:
                        continue
                    if not (connects[member] & rest) and len(rest) < n - 1:
                        # keep connected unless forced (cross products
                        # only when nothing else remains)
                        if any(connects[other] & rest for other in
                               (set(range(n)) - fs)):
                            continue
                    rest_cost, rest_card, rest_order = best[rest]
                    card = self._join_cardinality(
                        rest_card, rest_order, aliases[member],
                        planned, join_edges)
                    cost = rest_cost + card
                    if entry is None or cost < entry[0]:
                        entry = (cost, card, rest_order + [aliases[member]])
                if entry is not None:
                    best[fs] = entry
        full = frozenset(range(n))
        if full not in best:
            return list(aliases)
        return best[full][2]

    def _join_cardinality(self, left_card: float, left_order: List[str],
                          right_alias: str, planned, join_edges) -> float:
        right_card = planned[right_alias].cardinality
        card = left_card * right_card
        left_set = set(left_order)
        for a, b, left_key, right_key in join_edges:
            if a == right_alias and b in left_set:
                a, b = b, a
                left_key, right_key = right_key, left_key
            if a in left_set and b == right_alias:
                ndv = max(self._edge_ndv(planned, a, left_key),
                          self._edge_ndv(planned, b, right_key))
                card /= ndv
        return max(1.0, card)

    def _build_join_tree(self, order: List[str], planned,
                         join_edges) -> Tuple[Operator, FrozenSet[str]]:
        first = order[0]
        tree = self._plan_source_with_filters(planned[first])
        joined: Set[str] = {first}
        tree_card = planned[first].cardinality
        for alias in order[1:]:
            left_keys: List[ex.Expression] = []
            right_keys: List[ex.Expression] = []
            for a, b, lkey, rkey in join_edges:
                if a in joined and b == alias:
                    left_keys.append(lkey)
                    right_keys.append(rkey)
                elif b in joined and a == alias:
                    left_keys.append(rkey)
                    right_keys.append(lkey)
            right_plan = self._plan_source_with_filters(planned[alias])
            if not left_keys:
                # cross product via constant keys (rare: disconnected
                # join graphs)
                left_keys = [ex.Literal(1, ColumnType.INT64)]
                right_keys = [ex.Literal(1, ColumnType.INT64)]
            # probe side = current tree; build = new source.  When the
            # new source is (estimated) larger, swap so the hash table
            # stays small.
            right_card = planned[alias].cardinality
            if right_card > tree_card * 4:
                tree = self._kernel_op(HashJoinOp(
                    right_plan, tree, right_keys, left_keys,
                    enable_kernels=self.options.enable_kernels))
            else:
                tree = self._kernel_op(HashJoinOp(
                    tree, right_plan, left_keys, right_keys,
                    enable_kernels=self.options.enable_kernels))
            tree_card = max(1.0, self._join_cardinality(
                tree_card, list(joined), alias, planned, join_edges))
            joined.add(alias)
        return tree, frozenset(joined)

    # ------------------------------------------------------------------
    # sources

    def _plan_source_with_filters(self, item: PlannedScan) -> Operator:
        source = item.source
        if isinstance(source, ScanSource):
            # the conjunct list (not a folded tree) reaches the scan so
            # late materialization can split it per tile into
            # extracted-only vs fallback-dependent conjuncts
            scan = TableScan(
                source.relation,
                list(source.requests.values()),
                predicates=list(item.filters),
                late_materialization=(
                    self.options.enable_late_materialization),
                skip_paths=sorted(item.skip_paths),
                range_prunes=self._range_prunes(source, item.filters),
                enable_skipping=self.options.enable_skipping,
                batch_rows=self.options.batch_rows,
                parallelism=self.options.parallelism,
                use_cache=self.options.tile_cache,
                multipath_shred=self.options.enable_multipath_shred,
            )
            self.scans.append(scan)
            return scan
        plan = self._plan_derived(source)
        for flt in item.filters:
            plan = FilterOp(plan, flt)
        return plan

    def _range_prunes(self, source: ScanSource,
                      filters: Sequence[ex.Expression]) -> List[RangePrune]:
        """Derive zone-map prunes from ANDed comparison conjuncts of the
        form ``access op literal``."""
        if not self.options.enable_zone_maps:
            return []
        paths = source.request_paths()
        prunes: List[RangePrune] = []
        for conjunct in filters:
            stack = [conjunct]
            while stack:
                expr = stack.pop()
                if isinstance(expr, ex.BoolAnd):
                    stack.extend((expr.left, expr.right))
                    continue
                if not isinstance(expr, ex.Comparison) or expr.op == "<>":
                    continue
                column, literal = _column_and_literal(expr)
                if column is None or literal is None or literal.value is None:
                    continue
                path = paths.get(column.name)
                if path is None or path == ROWID_PATH:
                    continue
                op = expr.op
                if isinstance(expr.right, ex.ColumnRef):
                    # literal on the left: flip so the column leads
                    op = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(
                        op, op)
                prunes.append(RangePrune(path, op, literal.value))
        return prunes

    def _plan_source(self, source: Source,
                     item: Optional[PlannedScan]) -> Operator:
        if item is not None:
            return self._plan_source_with_filters(item)
        return self._plan_source_with_filters(PlannedScan(source))

    def _plan_derived(self, source: DerivedSource) -> Operator:
        sub_planner = Planner(self.options)
        inner = sub_planner.plan_block(source.block)
        self.scans.extend(sub_planner.scans)
        self.kernel_ops.extend(sub_planner.kernel_ops)
        outputs = [
            (f"{source.alias}.{name}", ex.ColumnRef(name, expr.result_type))
            for name, expr in source.block.select
        ]
        return ProjectOp(inner, outputs)

    def _source_schema(self, source: Source) -> Dict[str, ColumnType]:
        if isinstance(source, ScanSource):
            return {request.name:
                    (ColumnType.FLOAT64
                     if request.target == ColumnType.DECIMAL
                     else request.target)
                    for request in source.requests.values()}
        return dict(source.output_types)


def _sample_batch(relation, source: ScanSource, rows: List[int]):
    """Resolve the source's access requests for a handful of sampled
    rows (per-tuple lookups; the sample is small by construction)."""
    import json

    from repro.engine.batch import Batch
    from repro.engine.scan import (ROWID_PATH, _typed_from_jsonb,
                                   _typed_from_python)
    from repro.jsonb.access import JsonbValue
    from repro.storage.column import ColumnBuilder, ColumnVector
    from repro.storage.formats import StorageFormat

    columns = {}
    for request in source.requests.values():
        if request.path == ROWID_PATH:
            data = np.array(rows, dtype=np.int64)
            columns[request.name] = ColumnVector(ColumnType.INT64, data)
            continue
        builder = ColumnBuilder(
            ColumnType.JSONB if request.target == ColumnType.JSONB
            else request.target)
        for row in rows:
            if relation.format == StorageFormat.JSON:
                document = json.loads(relation.text_rows[row])
                builder.append(_typed_from_python(
                    request.path.lookup(document), request))
            else:
                tile = relation.tile_of_row(row)
                value = JsonbValue(
                    tile.jsonb_rows[row - tile.first_row]
                ).get_path(request.path)
                builder.append(_typed_from_jsonb(value, request))
        columns[request.name] = builder.finish()
    if not columns:
        return None
    return Batch(columns, len(rows))


def _column_and_literal(predicate: ex.Comparison):
    left, right = predicate.left, predicate.right
    if isinstance(left, ex.ColumnRef) and isinstance(right, ex.Literal):
        return left, right
    if isinstance(right, ex.ColumnRef) and isinstance(left, ex.Literal):
        return right, left
    if isinstance(left, ex.ColumnRef):
        return left, None
    if isinstance(right, ex.ColumnRef):
        return right, None
    return None, None
