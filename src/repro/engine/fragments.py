"""Plan fragments — one two-phase IR for local and cluster execution
(DESIGN.md §10).

The optimizer's output for a partial-capable block is a small DAG of
:class:`PlanFragment`\\ s — leaf scans producing partial states, an
exchange edge, and a final merge — with the partitioning of every edge
declared.  The same IR drives both executors:

* the single-node engine runs the fragments in process, where every
  exchange degenerates to a :class:`~repro.engine.morsels.LocalExchange`
  pass-through (``execute_fragments_local``);
* the cluster coordinator ships the leaf fragments to shards over the
  JSON-lines protocol and runs only the merge fragment itself
  (``cluster/coordinator.py``).

Location transparency holds because fragment *planning* is purely
shape-driven (it never reads data) and fragment *execution* reuses the
chunk machinery of ``partial.py``, whose ``(block, chunk)``-ordered
merge is bit-identical to the fused operator tree by construction.

Broadcast joins.  A two-table equi-join plans as::

    build[b] ==broadcast==> probe[a] --partials--> merge

The build side's surviving rows are broadcast once (to every shard, or
handed across the in-process exchange); each probe fragment joins its
canonical chunks against one shared hash index and feeds joined chunks
through the ordinary per-mode chunk builders.  Whether the build side
is *small enough* to broadcast is the transport's decision (the
coordinator compares the shards' unanimous estimate against
``broadcast_max_rows``); the planner here only pins the orientation —
probe/build and join order come from the same DP ordering and 4x swap
rule as the fused plan, so the shipped plan is the fused plan.

Anything the IR cannot express declines with a ``reason`` and the
caller falls back — single-node to the fused tree, the coordinator to
the gather path.  Either way results are bit-identical; decline is a
performance event, never a correctness event.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.engine.morsels import LocalExchange
from repro.engine.optimizer import Planner
from repro.engine.partial import (
    GATHER,
    _has_scalar_subquery,
    classify_block,
    classify_output,
    execute_build_fragment,
    execute_partial,
    execute_probe_fragment,
    merge_build_pieces,
    merge_counters,
    merge_partial_results,
)
from repro.engine.plan import QueryBlock, QueryOptions, ScanSource
from repro.engine.scan import ScanCounters
from repro.errors import ExecutionError


@dataclass(frozen=True)
class PlanFragment:
    """One node of the fragment DAG.

    ``kind``
        ``"partial"`` — scan one alias, emit per-chunk partial states;
        ``"build"`` — scan one alias, emit its surviving rows for a
        broadcast; ``"merge"`` — fold upstream pieces in global
        ``(block, chunk)`` order and run the finishing tail.
    ``exchange``
        How this fragment's *output* moves: ``"partials"`` (chunk
        states to the merge), ``"broadcast"`` (build rows replicated to
        every probe executor) or ``"result"`` (the merge's final rows).
    ``partitioning``
        Where the fragment runs: ``"canonical-blocks"`` (every shard
        over its round-robin blocks; a single node is the 1-shard
        special case) or ``"coordinator"`` (exactly one executor).
    """

    fragment_id: int
    kind: str
    exchange: str
    partitioning: str
    alias: Optional[str] = None
    mode: Optional[str] = None
    inputs: Tuple[int, ...] = ()

    def to_dict(self) -> dict:
        out = {"id": self.fragment_id, "kind": self.kind,
               "exchange": self.exchange,
               "partitioning": self.partitioning}
        if self.alias is not None:
            out["alias"] = self.alias
        if self.mode is not None:
            out["mode"] = self.mode
        if self.inputs:
            out["inputs"] = list(self.inputs)
        return out


@dataclass(frozen=True)
class JoinSpec:
    """Pinned broadcast-join orientation (shipped with the fragments
    so every executor obeys one plan regardless of local statistics)."""

    probe: str
    build: str
    order: Tuple[str, ...]
    #: planner estimate of the build side's surviving cardinality —
    #: shard-local when planned on a shard; the coordinator sums the
    #: shards' estimates before comparing against ``broadcast_max_rows``
    build_estimate: float

    def to_dict(self) -> dict:
        return {"probe": self.probe, "build": self.build,
                "order": list(self.order),
                "build_estimate": float(self.build_estimate)}


@dataclass
class FragmentPlan:
    """The planned DAG, or a decline with its reason."""

    mode: str  # partial merge mode, or GATHER when declined
    fragments: List[PlanFragment] = field(default_factory=list)
    join: Optional[JoinSpec] = None
    reason: Optional[str] = None

    @property
    def declined(self) -> bool:
        return self.mode == GATHER

    def to_dict(self) -> dict:
        out: dict = {"mode": self.mode}
        if self.reason:
            out["reason"] = self.reason
        if self.join is not None:
            out["join"] = self.join.to_dict()
        if self.fragments:
            out["fragments"] = [fragment.to_dict()
                                for fragment in self.fragments]
        return out

    def describe(self) -> str:
        """One-line rendering for EXPLAIN / the coordinator's stats."""
        if self.declined:
            return f"fragments: gather (reason={self.reason})"
        if self.join is not None:
            return (f"fragments: build[{self.join.build}] =broadcast=> "
                    f"probe[{self.join.probe}] -> merge "
                    f"(mode={self.mode})")
        alias = self.fragments[0].alias
        return f"fragments: partial[{alias}] -> merge (mode={self.mode})"


def plan_fragments(block: QueryBlock,
                   options: Optional[QueryOptions] = None) -> FragmentPlan:
    """Plan a block as a fragment DAG, or decline with a reason.

    Deterministic and shape-driven except for the broadcast join's
    probe/build orientation, which follows the statistics-fed DP order
    and 4x swap rule — exactly the fused plan's choice, so executing
    the fragments replays the fused operator tree.
    """
    options = options or QueryOptions()
    mode = classify_block(block)
    if mode != GATHER:
        # single-source partial: scan fragment feeding the merge
        scan = PlanFragment(0, "partial", "partials", "canonical-blocks",
                            alias=block.sources[0].alias, mode=mode)
        merge = PlanFragment(1, "merge", "result", "coordinator",
                             mode=mode, inputs=(0,))
        return FragmentPlan(mode, [scan, merge])

    # two-table broadcast join?
    reason = _join_decline_reason(block)
    if reason is not None:
        return FragmentPlan(GATHER, reason=reason)
    mode = classify_output(block)
    if mode == GATHER:
        return FragmentPlan(GATHER, reason="output-mode")

    planner = Planner(options)
    planned, join_edges, _residuals = planner.fragment_inputs(block)
    if not join_edges:
        return FragmentPlan(GATHER, reason="cross-product")
    aliases = [source.alias for source in block.sources]
    order = planner.join_order(aliases, planned, join_edges)
    probe, build = planner.probe_build_orientation(order, planned)
    join = JoinSpec(probe, build, tuple(order),
                    planned[build].cardinality)
    fragments = [
        PlanFragment(0, "build", "broadcast", "canonical-blocks",
                     alias=build),
        PlanFragment(1, "partial", "partials", "canonical-blocks",
                     alias=probe, mode=mode, inputs=(0,)),
        PlanFragment(2, "merge", "result", "coordinator", mode=mode,
                     inputs=(1,)),
    ]
    return FragmentPlan(mode, fragments, join=join)


def _join_decline_reason(block: QueryBlock) -> Optional[str]:
    """Why a non-single-source block cannot plan as a broadcast join
    (``None`` when it can, shape-wise)."""
    # LEFT JOINs and IN-subqueries bind as one source plus side
    # blocks, so test them before the source count for the telling
    # reason
    if block.left_joins:
        return "left-join"
    if block.subquery_filters:
        return "subquery-filter"
    if block.union_blocks:
        return "union"
    if _has_scalar_subquery(block):
        return "scalar-subquery"
    if len(block.sources) != 2:
        return "not-two-tables"
    if not all(isinstance(source, ScanSource)
               for source in block.sources):
        return "derived-table"
    return None


# ----------------------------------------------------------------------
# single-node fragment execution: exchanges are in-process pass-throughs


def execute_fragments_local(block: QueryBlock, options: QueryOptions,
                            plan: Optional[FragmentPlan] = None):
    """Run a fragment plan entirely in process (the 1-shard case).

    Returns ``(columns, rows, counters, join_order)``.  The exchange
    between fragments is a :class:`LocalExchange` — same pieces, same
    ``(block, chunk)`` merge order as the cluster path, no sockets —
    which is what makes the single-node executor and the coordinator
    two transports under one IR.
    """
    plan = plan or plan_fragments(block, options)
    if plan.declined:
        raise ExecutionError(
            f"block does not plan as fragments ({plan.reason}); "
            f"run the fused operator tree instead")

    counter_dicts: List[dict] = []
    # the merge fragment's sort tail reports its own kernel coverage,
    # exactly as the fused tree's SortOp/TopKOp would
    tail_counters = ScanCounters()
    if plan.join is None:
        exchange = LocalExchange("partials")
        result = execute_partial(block, options, shard_index=0,
                                 shard_count=1, expected_mode=plan.mode)
        counter_dicts.append(result["counters"])
        exchange.send(result["pieces"])
        columns, rows = merge_partial_results(block, plan.mode,
                                              exchange.receive(),
                                              options=options,
                                              counters=tail_counters)
        join_order = [block.sources[0].alias]
    else:
        broadcast = LocalExchange("broadcast")
        built = execute_build_fragment(block, options, shard_index=0,
                                       shard_count=1,
                                       build_alias=plan.join.build)
        counter_dicts.append(built["counters"])
        broadcast.send(built["pieces"])
        build_rows = merge_build_pieces(broadcast.receive())
        fragment = {"probe": plan.join.probe, "build": plan.join.build,
                    "columns": built["columns"], "types": built["types"],
                    "rows": build_rows}
        exchange = LocalExchange("partials")
        probed = execute_probe_fragment(block, options, shard_index=0,
                                        shard_count=1, fragment=fragment,
                                        expected_mode=plan.mode)
        counter_dicts.append(probed["counters"])
        exchange.send(probed["pieces"])
        columns, rows = merge_partial_results(block, plan.mode,
                                              exchange.receive(),
                                              options=options,
                                              counters=tail_counters)
        join_order = list(plan.join.order)

    counters = merge_counters(counter_dicts)
    counters.merge(tail_counters)
    if plan.join is not None:
        # one in-process "shard" received the build rows once
        counters.broadcast_rows += len(build_rows)
    _record_scans(block, plan, counter_dicts)
    return columns, rows, counters, join_order


def _record_scans(block: QueryBlock, plan: FragmentPlan,
                  counter_dicts: Sequence[dict]) -> None:
    """Feed per-table running totals (the server's `stats` command)
    exactly as the fused executor does after materializing."""
    aliases: List[str]
    if plan.join is None:
        aliases = [block.sources[0].alias]
    else:
        aliases = [plan.join.build, plan.join.probe]
    for alias, wire in zip(aliases, counter_dicts):
        source = block.source(alias)
        if isinstance(source, ScanSource):
            source.relation.record_scan(merge_counters([wire]))
