"""Plan rendering: a readable operator tree for EXPLAIN output."""

from __future__ import annotations

from typing import List

from repro.engine import operators as op
from repro.engine.scan import TableScan


def render_plan(root, indent: str = "", analyze: bool = False) -> str:
    """Render a physical operator tree as indented text.

    With *analyze*, scans are annotated with their (already executed)
    counters — tiles scanned/skipped, fallback lookups, cache hits.
    """
    lines: List[str] = []
    _render(root, lines, 0, analyze)
    return "\n".join(lines)


def render_fragments(plan) -> str:
    """Render a :class:`~repro.engine.fragments.FragmentPlan`: the
    one-line summary, then one line per fragment with its partitioning
    and exchange — the boundaries a cluster would ship across."""
    lines = [plan.describe()]
    for fragment in plan.fragments:
        alias = f"[{fragment.alias}]" if fragment.alias else ""
        mode = f" mode={fragment.mode}" if fragment.mode else ""
        inputs = ("  <- " + ", ".join(f"F{i}" for i in fragment.inputs)
                  if fragment.inputs else "")
        lines.append(f"  F{fragment.fragment_id} {fragment.kind}{alias} "
                     f"on {fragment.partitioning} -> "
                     f"{fragment.exchange}{mode}{inputs}")
    if plan.join is not None:
        lines.append(f"  broadcast build estimate: "
                     f"{plan.join.build_estimate:.1f} rows")
    return "\n".join(lines)


def _describe(node, analyze: bool = False) -> str:
    if isinstance(node, TableScan):
        skips = ""
        if node.skip_paths:
            skips = f", skip on {[str(p) for p in node.skip_paths]}"
        prunes = ""
        if node.range_prunes:
            prunes = f", zone maps on " \
                     f"{sorted({str(p.path) for p in node.range_prunes})}"
        predicate = ", filtered" if node.predicate is not None else ""
        workers = (f", parallelism={node.parallelism}"
                   if node.parallelism > 1 else "")
        cache = ", cached" if node.use_cache else ""
        shred = ", shredded" if node.multipath_shred else ""
        latemat = ", late-materialized" if node.late_materialization else ""
        text = (f"TableScan {node.relation.name} "
                f"[{node.relation.format.value}] "
                f"({len(node.requests)} accesses{predicate}{skips}{prunes}"
                f"{workers}{cache}{shred}{latemat})")
        if analyze:
            stats = ", ".join(f"{name}={value}" for name, value
                              in node.counters.as_dict().items())
            text += f"  [{stats}]"
            if node.levels_scanned:
                # per-LSM-level tile counts this scan actually touched
                levels = ", ".join(
                    f"L{level}={count}" for level, count
                    in sorted(node.levels_scanned.items()))
                text += f"  [levels: {levels}]"
        return text
    if isinstance(node, op.HashJoinOp):
        return (f"HashJoin [{node.kind.value}] on "
                f"{len(node.left_keys)} key(s)"
                + (", residual" if node.residual is not None else "")
                + _kernel_stats(node, analyze))
    if isinstance(node, op.HashAggregateOp):
        keys = [name for name, _ in node.keys]
        aggs = [f"{spec.func}->{spec.name}" for spec in node.aggregates]
        return f"HashAggregate keys={keys} aggs={aggs}" \
            + _kernel_stats(node, analyze)
    if isinstance(node, op.FilterOp):
        return "Filter (pushed into scan)" if node.pre_applied else "Filter"
    if isinstance(node, op.ProjectOp):
        return f"Project {[name for name, _ in node.outputs]}"
    if isinstance(node, op.SortOp):
        keys = [f"{k.name}{' desc' if k.descending else ''}" for k in node.keys]
        return f"Sort by {keys}" + _kernel_stats(node, analyze)
    if isinstance(node, op.TopKOp):
        keys = [f"{k.name}{' desc' if k.descending else ''}" for k in node.keys]
        return f"TopK limit={node.limit} by {keys}" \
            + _kernel_stats(node, analyze)
    if isinstance(node, op.LimitOp):
        return f"Limit {node.limit}"
    if isinstance(node, op.ChainOp):
        return f"UnionAll ({len(node.children)} branches)"
    if isinstance(node, op.BatchSource):
        return "BatchSource"
    return type(node).__name__


def _kernel_stats(node, analyze: bool) -> str:
    """Batch-kernel coverage annotation for EXPLAIN ANALYZE."""
    if not analyze:
        return ""
    counters = node.counters
    return (f"  [kernel_rows={counters.kernel_rows}, "
            f"fallback_rows={counters.fallback_rows}]")


def _children(node):
    if isinstance(node, op.HashJoinOp):
        return [node.left, node.right]
    if isinstance(node, op.ChainOp):
        return list(node.children)
    child = getattr(node, "child", None)
    return [child] if child is not None else []


def _render(node, lines: List[str], depth: int, analyze: bool = False) -> None:
    prefix = "  " * depth + ("-> " if depth else "")
    lines.append(prefix + _describe(node, analyze))
    for child in _children(node):
        _render(child, lines, depth + 1, analyze)
