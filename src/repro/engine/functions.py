"""Scalar SQL functions beyond the operator grammar.

Notable members are the JSON helpers that queries use against
non-extracted structures (e.g. scanning a high-cardinality array with
plain Tiles, the slow path that Tiles-* replaces with a child-relation
join):

* ``json_contains(x -> 'arr', 'key', value)`` — true when any element
  of the array has ``element[key] == value`` (scalar elements compare
  directly when ``key`` is ``''``);
* ``json_length(x -> 'arr')`` — element count;
* ``lower`` / ``upper`` / ``coalesce``.
"""

from __future__ import annotations

from typing import List, Sequence, Set

import numpy as np

from repro.core.types import ColumnType
from repro.engine.batch import Batch
from repro.engine.expressions import Expression, Literal
from repro.errors import SqlBindError
from repro.storage.column import ColumnVector


class JsonContains(Expression):
    def __init__(self, array_expr: Expression, key: str, value: object):
        self.array_expr = array_expr
        self.key = key
        self.value = value
        self.result_type = ColumnType.BOOL

    def children(self) -> Sequence[Expression]:
        return (self.array_expr,)

    def evaluate(self, batch: Batch) -> ColumnVector:
        array_column = self.array_expr.evaluate(batch)
        data = np.zeros(batch.length, dtype=bool)
        for row in range(batch.length):
            if array_column.null_mask[row]:
                continue
            array = array_column.data[row]
            if not isinstance(array, list):
                continue
            for element in array:
                if self.key:
                    if isinstance(element, dict) and \
                            element.get(self.key) == self.value:
                        data[row] = True
                        break
                elif element == self.value:
                    data[row] = True
                    break
        return ColumnVector(ColumnType.BOOL, data,
                            array_column.null_mask.copy())


class JsonLength(Expression):
    def __init__(self, array_expr: Expression):
        self.array_expr = array_expr
        self.result_type = ColumnType.INT64

    def children(self) -> Sequence[Expression]:
        return (self.array_expr,)

    def evaluate(self, batch: Batch) -> ColumnVector:
        array_column = self.array_expr.evaluate(batch)
        data = np.zeros(batch.length, dtype=np.int64)
        nulls = array_column.null_mask.copy()
        for row in range(batch.length):
            if nulls[row]:
                continue
            value = array_column.data[row]
            if isinstance(value, (list, dict)):
                data[row] = len(value)
            else:
                nulls[row] = True
        return ColumnVector(ColumnType.INT64, data, nulls)


class StringTransform(Expression):
    def __init__(self, operand: Expression, transform: str):
        self.operand = operand
        self.transform = transform
        self.result_type = ColumnType.STRING

    def children(self) -> Sequence[Expression]:
        return (self.operand,)

    def evaluate(self, batch: Batch) -> ColumnVector:
        value = self.operand.evaluate(batch)
        convert = str.lower if self.transform == "lower" else str.upper
        data = np.array(
            [convert(item) if isinstance(item, str) else item
             for item in value.data],
            dtype=object,
        )
        return ColumnVector(ColumnType.STRING, data, value.null_mask.copy())


class Coalesce(Expression):
    def __init__(self, operands: List[Expression]):
        self.operands = operands
        self.result_type = operands[0].result_type

    def children(self) -> Sequence[Expression]:
        return tuple(self.operands)

    def null_rejected_refs(self) -> Set[str]:
        return set()

    def evaluate(self, batch: Batch) -> ColumnVector:
        result = self.operands[0].evaluate(batch)
        data = result.data.copy()
        nulls = result.null_mask.copy()
        for operand in self.operands[1:]:
            if not nulls.any():
                break
            other = operand.evaluate(batch)
            fill = nulls & ~other.null_mask
            data[fill] = other.data[fill]
            nulls &= ~fill
        return ColumnVector(result.type, data, nulls)


def bind_scalar_function(name: str, args: List[Expression]) -> Expression:
    if name == "json_contains":
        if len(args) != 3 or not isinstance(args[1], Literal) \
                or not isinstance(args[2], Literal):
            raise SqlBindError(
                "json_contains(array, 'key', literal) expects literals")
        return JsonContains(args[0], args[1].value, args[2].value)
    if name == "json_length":
        if len(args) != 1:
            raise SqlBindError("json_length(array) expects one argument")
        return JsonLength(args[0])
    if name in ("lower", "upper"):
        if len(args) != 1:
            raise SqlBindError(f"{name}(text) expects one argument")
        return StringTransform(args[0], name)
    if name == "coalesce":
        if not args:
            raise SqlBindError("coalesce needs at least one argument")
        return Coalesce(args)
    raise SqlBindError(f"unknown function {name!r}")
