"""Query execution: plan a block, run it, collect results + counters."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.engine.optimizer import Planner
from repro.engine.plan import QueryBlock, QueryOptions
from repro.engine.scan import ScanCounters


@dataclass
class QueryResult:
    columns: List[str]
    rows: List[Tuple]
    counters: ScanCounters = field(default_factory=ScanCounters)
    join_order: List[str] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.rows)

    def column(self, name: str) -> List[object]:
        index = self.columns.index(name)
        return [row[index] for row in self.rows]

    def scalar(self) -> object:
        """The single value of a one-row, one-column result."""
        if len(self.rows) != 1 or len(self.columns) != 1:
            raise ValueError("result is not scalar")
        return self.rows[0][0]

    def format_table(self, limit: int = 20) -> str:
        headers = self.columns
        shown = self.rows[:limit]
        cells = [[_text(value) for value in row] for row in shown]
        widths = [max(len(header), *(len(row[i]) for row in cells))
                  if cells else len(header)
                  for i, header in enumerate(headers)]
        lines = [
            " | ".join(header.ljust(widths[i])
                       for i, header in enumerate(headers)),
            "-+-".join("-" * width for width in widths),
        ]
        for row in cells:
            lines.append(" | ".join(cell.ljust(widths[i])
                                    for i, cell in enumerate(row)))
        if len(self.rows) > limit:
            lines.append(f"... ({len(self.rows)} rows total)")
        return "\n".join(lines)


def _text(value: object) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)


def execute_block(block: QueryBlock,
                  options: Optional[QueryOptions] = None) -> QueryResult:
    """Plan and run one query block.

    Aggregated single-source blocks route through the plan-fragment IR
    (DESIGN.md §10) — the same two-phase plan the cluster executes,
    with the exchange degenerating to an in-process pass-through.
    Everything else (and ``enable_fragments=False``) runs the fused
    operator tree; both paths are bit-identical by the partial-merge
    proof in ``engine/partial.py``.
    """
    options = options or QueryOptions()
    if options.enable_fragments:
        from repro.engine.fragments import execute_fragments_local, \
            plan_fragments
        plan = plan_fragments(block, options)
        # rows mode stays fused locally: the fused tree streams
        # through LIMIT and stops scanning early, which the
        # ship-everything fragment path would give up
        if plan.join is None and plan.mode in ("scalar", "single_key",
                                               "generic"):
            columns, rows, counters, join_order = \
                execute_fragments_local(block, options, plan)
            return QueryResult(columns, rows, counters, join_order)
    planner = Planner(options)
    operator = planner.plan_block(block)
    batch = operator.materialize()
    columns = block.output_names()
    rows: List[Tuple] = []
    if batch is not None:
        vectors = [batch.column(name) for name in columns]
        for row in range(batch.length):
            rows.append(tuple(vector.value(row) for vector in vectors))
    counters = ScanCounters()
    for scan in planner.scans:
        counters.merge(scan.counters)
        # per-table running totals for the server's `stats` command
        scan.relation.record_scan(scan.counters)
    for kernel_op in planner.kernel_ops:
        # joins/aggregates/sorts report kernel_rows / fallback_rows
        counters.merge(kernel_op.counters)
    return QueryResult(columns, rows, counters, planner.last_join_order)
