"""Table scans with access-expression push-down (Sections 4.2-4.5, 4.8).

The scan receives *access requests* — the (key path, requested type,
as-text) triples that the query uses on this table — and resolves each
request per tile:

* an extracted column of a compatible type streams out directly (cast
  rewriting, Section 4.3: the requested type picks the cheapest
  conversion from the stored column type);
* date/time columns refuse text conversion (Section 4.9) and numeric
  strings refuse lossy text reconstruction, both falling back to JSONB;
* NULL slots of type-conflicting columns re-check the binary fallback
  per tuple (Section 3.4);
* everything else is a per-tuple JSONB traversal (or a full text parse
  for the raw JSON format) — the expensive path the paper measures.

Tiles whose header proves a null-rejected path cannot occur are skipped
entirely (Section 4.8).

All fallback sites shred *every* requested path of a tuple in one pass
over its binary representation (``repro.jsonb.shred``, Sinew/Dremel
style) instead of walking the document once per path; the
``multipath_shred`` switch restores the per-path traversal for
ablation.  Counter semantics are independent of the switch:
``fallback_lookups`` counts *logical* path resolutions (tuples ×
paths), so Table-5-style numbers are comparable between modes, while
``shred_passes`` / ``shred_paths`` expose the physical walk sharing.

Late materialization (DESIGN.md §9): when the pushed-down predicate
splits into conjuncts that only touch directly-resolved (extracted)
columns and conjuncts that need the fallback, the scan evaluates the
cheap conjuncts first and decodes fallback columns only for the rows
that survive.  The contract is bit-identical-or-decline: a tile whose
slice needs Section 3.4 conflict patching, or whose predicate has no
extracted-only conjunct, falls back to full materialization for that
tile (counted in ``latemat_declines``).  With late materialization on,
``fallback_lookups`` counts the *selected* tuples only — the rows the
selection vector spared are in ``fallback_rows_skipped``.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, fields
from functools import partial
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.datetimes import parse_datetime_string
from repro.core.jsonpath import KeyPath
from repro.core.types import ColumnType
from repro.engine.batch import Batch
from repro.engine.expressions import BoolAnd, Expression
from repro.engine.morsels import Morsel, canonical_chop, run_ordered
from repro.jsonb.access import JsonbValue
from repro.jsonb.shred import ShredPlan, compile_paths, shred_jsonb, \
    shred_python
from repro.storage.column import ColumnBuilder, ColumnVector
from repro.storage.formats import StorageFormat
from repro.storage.relation import Relation
from repro.storage.tile_cache import GLOBAL_TILE_CACHE, make_key
from repro.tiles.tile import Tile

ROWID_PATH = KeyPath(("#rowid",))


@dataclass(frozen=True)
class AccessRequest:
    """One pushed-down access expression (a scan placeholder)."""

    path: KeyPath
    target: ColumnType
    as_text: bool
    name: str

    @staticmethod
    def make(alias: str, path: KeyPath, target: ColumnType,
             as_text: bool) -> "AccessRequest":
        marker = "text" if as_text else "json"
        name = f"{alias}${path}::{target.name}${marker}"
        return AccessRequest(path, target, as_text, name)


@dataclass
class ScanCounters:
    """Observability for the Section 4.8 / Table 5 experiments.

    Counters are mergeable: parallel workers accumulate into
    thread-local instances and fold them into the scan's shared
    instance under a lock (all fields are commutative sums).
    """

    tiles_total: int = 0
    tiles_skipped: int = 0
    rows_scanned: int = 0
    fallback_lookups: int = 0
    #: (tile, access) resolutions served entirely from the JSONB/text
    #: fallback — no extracted column existed for the requested path.
    #: The maintenance subsystem reads this as direct evidence that a
    #: table degraded to fallback scans (DESIGN.md "Online maintenance").
    fallback_tiles: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    #: single-pass document walks performed by the multi-path shredder
    #: (one per tuple per fallback group decode).
    shred_passes: int = 0
    #: path results those walks produced (tuples × distinct paths);
    #: ``shred_paths - shred_passes`` is the number of per-path
    #: document traversals the shredder avoided.
    shred_paths: int = 0
    #: tile payloads this scan faulted in from disk (out-of-core
    #: residency; 0 means every touched tile was already resident)
    tile_loads: int = 0
    #: tiles the residency budget paged out while this scan's pins
    #: pushed it over — eviction churn attributable to this query
    tile_evictions: int = 0
    #: rows processed by the gated batch kernels (engine/kernels.py):
    #: vectorized generic GROUP BY, join probe, ORDER BY.  The always-on
    #: single-int64 fast paths are not counted — kernels-off runs
    #: therefore report 0 here.
    kernel_rows: int = 0
    #: rows a kernel declined (NaN keys, mixed types, overflow risk)
    #: that ran on the per-tuple reference path despite
    #: ``enable_kernels`` — the vectorized-coverage gap.
    fallback_rows: int = 0
    #: canonical-chop blocks inside surviving tiles whose per-block
    #: zone maps excluded the pushed comparisons (DESIGN.md §9) —
    #: finer-grained than ``tiles_skipped``, and their rows never
    #: count into ``rows_scanned``.
    blocks_pruned: int = 0
    #: (tuple, path) fallback decodes the late-materialization
    #: selection vector avoided: rows the cheap extracted-column
    #: conjuncts already rejected were never shredded.
    fallback_rows_skipped: int = 0
    #: tiles where late materialization was requested but declined —
    #: the slice needed Section 3.4 conflict patching, or no conjunct
    #: was evaluable on extracted columns alone (full materialization
    #: ran instead; results are identical either way).
    latemat_declines: int = 0
    #: build-side rows shipped by a broadcast-join exchange (DESIGN.md
    #: §10): the merged build relation's row count times the number of
    #: shards it was broadcast to.  0 for single-node and gather runs.
    broadcast_rows: int = 0
    #: protocol bytes (requests sent + responses received) the
    #: coordinator exchanged with backends to answer this query —
    #: partial scatter, fragment planning, broadcast, or gather pages.
    #: Always 0 for embedded single-node execution.
    exchange_bytes: int = 0
    #: distributed-join attempts that declined to the gather path
    #: (non-equi joins, oversized or non-wire build sides, shard plan
    #: disagreement) under the bit-identical-or-decline contract.
    distjoin_declines: int = 0

    def merge(self, other: "ScanCounters") -> "ScanCounters":
        for field in fields(self):
            setattr(self, field.name,
                    getattr(self, field.name) + getattr(other, field.name))
        return self

    def as_dict(self) -> Dict[str, int]:
        return {field.name: getattr(self, field.name)
                for field in fields(self)}


@dataclass(frozen=True)
class RangePrune:
    """A pushed-down comparison usable against per-tile zone maps:
    ``column op literal`` with the column on the left."""

    path: KeyPath
    op: str  # = < <= > >=
    value: object

    def excludes(self, low: object, high: object) -> bool:
        """True when no value in [low, high] can satisfy the predicate."""
        try:
            if self.op == "=":
                return self.value < low or self.value > high
            if self.op == "<":
                return low >= self.value
            if self.op == "<=":
                return low > self.value
            if self.op == ">":
                return high <= self.value
            if self.op == ">=":
                return high < self.value
        except TypeError:
            return False  # incomparable types: never prune
        return False


class TableScan:
    """Produce one batch per tile (or per fixed chunk for un-tiled
    formats), resolving the access requests."""

    def __init__(self, relation: Relation, requests: Sequence[AccessRequest],
                 predicate: Optional[Expression] = None,
                 skip_paths: Sequence[KeyPath] = (),
                 range_prunes: Sequence[RangePrune] = (),
                 enable_skipping: bool = True,
                 batch_rows: int = 4096,
                 parallelism: int = 1,
                 use_cache: bool = False,
                 multipath_shred: bool = True,
                 predicates: Optional[Sequence[Expression]] = None,
                 late_materialization: bool = False):
        self.relation = relation
        self.requests = list(requests)
        #: pushed-down predicate as an ANDed conjunct list — the unit
        #: the late-materialization split works on.  ``predicate`` (a
        #: single folded tree) is kept for callers that build one
        #: expression; both spellings evaluate identically (Kleene AND
        #: keep-masks intersect).
        if predicates is not None:
            self.predicates: List[Expression] = list(predicates)
            folded = None
            for conjunct in self.predicates:
                folded = conjunct if folded is None else BoolAnd(folded,
                                                                 conjunct)
            self.predicate = folded
        else:
            self.predicate = predicate
            self.predicates = [] if predicate is None else [predicate]
        self.late_materialization = late_materialization
        self.skip_paths = list(skip_paths)
        self.range_prunes = list(range_prunes)
        self.enable_skipping = enable_skipping
        self.batch_rows = batch_rows
        self.parallelism = max(1, parallelism)
        self.use_cache = use_cache
        self.multipath_shred = multipath_shred
        self.counters = ScanCounters()
        self._counters_lock = threading.Lock()
        #: ``level -> tiles scanned`` histogram filled at morsel
        #: enumeration time; EXPLAIN ANALYZE renders it so operators
        #: see which LSM levels a query actually touched
        self.levels_scanned: Dict[int, int] = {}
        #: compiled shred plans per distinct path tuple; worker threads
        #: may race to build the same plan — compilation is pure, so
        #: last-write-wins is harmless
        self._shred_plans: Dict[tuple, ShredPlan] = {}

    def add_predicate(self, conjunct: Expression) -> None:
        """Push one more ANDed conjunct into the scan (the optimizer
        folds row-local residuals in here; keep-mask intersection makes
        the order immaterial)."""
        self.predicates.append(conjunct)
        self.predicate = conjunct if self.predicate is None else BoolAnd(
            self.predicate, conjunct)

    # ------------------------------------------------------------------
    # morsel enumeration + dispatch

    def morsels(self) -> List[Morsel]:
        """Chop the relation into batch-sized morsels, applying tile
        skipping (Section 4.8) at enumeration time so skipped tiles
        never reach a worker."""
        morsels: List[Morsel] = []
        if self.relation.format == StorageFormat.JSON:
            rows = self.relation.text_rows or []
            for start in range(0, len(rows), self.batch_rows):
                stop = min(start + self.batch_rows, len(rows))
                morsels.append(Morsel(len(morsels), None, start, stop))
            return morsels
        # enumerate one epoch-stamped manifest snapshot, not the live
        # list: a concurrent LSM compaction swaps tiles underneath, and
        # the snapshot guarantees this scan sees either the old run or
        # the merged tile, never a torn mixture (DESIGN.md §8)
        #
        # canonical block layout: chop every tile at multiples of the
        # configured tile size, not at its physical row count.  Legacy
        # tiles never exceed tile_size rows, so nothing changes for
        # them — but an LSM-merged tile (fanout * tile_size rows) is
        # sliced exactly where its inputs' boundaries were, and the
        # per-batch kernel partials fold in the same order as before
        # the merge.  Batch boundaries are where float summation
        # grouping lives; this is what makes query results bit-exact
        # with compaction on vs off (the same trick the cluster's
        # partial merge plays across drifted shard tile boundaries).
        block = canonical_chop(self.batch_rows,
                               self.relation.config.tile_size)
        for tile in self.relation.manifest().tiles:
            self.counters.tiles_total += 1
            if self._can_skip(tile):
                self.counters.tiles_skipped += 1
                continue
            self.counters.rows_scanned += tile.row_count
            level = tile.header.level
            self.levels_scanned[level] = \
                self.levels_scanned.get(level, 0) + 1
            for start in range(0, tile.row_count, block):
                stop = min(start + block, tile.row_count)
                if self._can_skip_block(tile, start, stop):
                    # block-granular zone maps (DESIGN.md §9): inside
                    # a surviving (typically LSM-merged) tile, whole
                    # canonical-chop blocks whose per-block bounds
                    # exclude the pushed comparisons never reach a
                    # worker
                    self.counters.blocks_pruned += 1
                    self.counters.rows_scanned -= stop - start
                    continue
                morsels.append(Morsel(len(morsels), tile, start, stop))
        return morsels

    def resolve_morsel(self, morsel: Morsel) -> Batch:
        """Scan + predicate for one morsel; safe to call from any
        worker thread (counters fold under a lock)."""
        local = ScanCounters()
        if morsel.tile is None:
            batch = self._apply_predicate(
                self._resolve_text(morsel.start, morsel.stop, local))
        else:
            # pin for the duration of the morsel: the payload cannot be
            # evicted while its columns are being sliced (the produced
            # batch keeps the underlying arrays alive by reference, so
            # eviction after unpin is safe).  _resolve_tile applies the
            # pushed predicates itself — the late-materialization path
            # needs them *before* the fallback columns exist.
            with morsel.tile.pinned(local) as tile:
                batch = self._resolve_tile(tile, morsel.start,
                                           morsel.stop, local)
        with self._counters_lock:
            self.counters.merge(local)
        return batch

    def batches(self) -> Iterator[Batch]:
        morsels = self.morsels()
        if self.parallelism > 1 and len(morsels) > 1:
            tasks = [partial(self.resolve_morsel, morsel)
                     for morsel in morsels]
            for batch in run_ordered(tasks, self.parallelism):
                if batch.length:
                    yield batch
            return
        for morsel in morsels:
            batch = self.resolve_morsel(morsel)
            if batch.length:
                yield batch

    def _can_skip(self, tile) -> bool:
        # *tile* is a TileHandle; everything consulted here lives in
        # the always-resident header, so skipping never faults a
        # paged-out tile in — skipped tiles cost zero disk reads
        if not self.enable_skipping:
            return False
        if not self.relation.format.supports_skipping:
            return False
        if any(not tile.header.may_contain(path)
               for path in self.skip_paths
               if path != ROWID_PATH):
            return True
        # zone maps: a comparison no value in the tile's range can
        # satisfy skips the tile (the comparison is null-rejecting, so
        # rows lacking the path contribute nothing either)
        for prune in self.range_prunes:
            bounds = tile.header.column_bounds(prune.path)
            if bounds is not None and prune.excludes(*bounds):
                return True
        return False

    def _can_skip_block(self, tile, start: int, stop: int) -> bool:
        """Block-granular zone maps: skip ``[start, stop)`` of a
        surviving tile when one pushed comparison excludes every
        ``tile_size`` bound-block the range overlaps.  An all-NULL
        bound-block is excluded by any prune (comparisons are
        null-rejecting, same argument as :meth:`_can_skip`); an
        unknown block (``None`` — incomparable mixed values) never
        prunes."""
        if not self.enable_skipping or not self.range_prunes:
            return False
        if not self.relation.format.supports_skipping:
            return False
        header = tile.header
        rows_per = getattr(header, "block_bounds_rows", 0)
        if rows_per <= 0:
            return False
        first = start // rows_per
        last = (stop - 1) // rows_per
        for prune in self.range_prunes:
            entries = header.block_bounds_for(prune.path)
            if entries is None or last >= len(entries):
                continue
            excluded = True
            for index in range(first, last + 1):
                entry = entries[index]
                if entry is None:
                    excluded = False
                    break
                if not entry:  # all-NULL block: no row can satisfy
                    continue
                if not prune.excludes(entry[0], entry[1]):
                    excluded = False
                    break
            if excluded:
                return True
        return False

    def _apply_predicate(self, batch: Batch) -> Batch:
        if self.predicate is None or batch.length == 0:
            return batch
        verdict = self.predicate.evaluate(batch)
        keep = verdict.data.astype(bool) & ~verdict.null_mask
        if keep.all():
            return batch
        return batch.filter(keep)

    # ------------------------------------------------------------------
    # resolution per tile

    def _resolve_tile(self, tile: Tile, start: int, stop: int,
                      counters: ScanCounters) -> Batch:
        resolved: Dict[str, Optional[ColumnVector]] = {}
        fallback: List[AccessRequest] = []
        conflicts: List[Tuple[AccessRequest, ColumnVector, np.ndarray]] = []
        for request in self.requests:
            if request.path == ROWID_PATH:
                data = np.arange(tile.first_row + start,
                                 tile.first_row + stop, dtype=np.int64)
                resolved[request.name] = ColumnVector(ColumnType.INT64, data)
                continue
            column = tile.column(request.path)
            direct = None
            if column is not None:
                meta = tile.header.columns[request.path]
                direct = self._convert_column(column, meta, request,
                                              start, stop)
            if direct is None:
                resolved[request.name] = None  # keeps the column order
                fallback.append(request)
                continue
            if meta.has_type_conflicts and direct.null_mask.any():
                # Section 3.4: only *stored* NULL slots mark "consult
                # the JSONB"; NULLs the cast itself introduced
                # (out-of-range float, unparseable string) are genuine
                # SQL NULLs.  When the slice has no stored NULL, skip
                # the fallback — and the defensive copy — entirely.
                stored_nulls = column.null_mask[start:stop]
                if stored_nulls.any():
                    # the direct vector may alias tile storage: copy
                    # before the fallback patches outlier values in
                    direct = ColumnVector(direct.type, direct.data.copy(),
                                          direct.null_mask)
                    conflicts.append((request, direct, stored_nulls))
            resolved[request.name] = direct
        if self.late_materialization and fallback and self.predicates:
            # late materialization (DESIGN.md §9): filter on the cheap
            # directly-resolved columns first, decode the fallback only
            # for surviving rows.  Decline to the eager path — full
            # materialization, identical results — when the slice needs
            # conflict patching (a cheap conjunct must never see an
            # unpatched outlier NULL) or when no conjunct is evaluable
            # on extracted columns alone.
            early, late = self._split_predicates(resolved)
            if early and not conflicts:
                return self._resolve_tile_late(tile, start, stop, counters,
                                               resolved, fallback,
                                               early, late)
            counters.latemat_declines += 1
        if fallback:
            resolved.update(self._fallback_group(tile, fallback, start,
                                                 stop, counters))
        if conflicts:
            self._patch_conflicts(tile, conflicts, start, counters)
        return self._apply_predicate(Batch(resolved, stop - start))

    def _split_predicates(
            self, resolved: Dict[str, Optional[ColumnVector]]
    ) -> Tuple[List[Expression], List[Expression]]:
        """Partition the conjunct list into *early* (every referenced
        column resolved directly from tile storage) and *late* (needs a
        fallback column) for one tile slice.  The split is per-tile: a
        path extracted in one tile may be fallback in the next."""
        direct = {name for name, vector in resolved.items()
                  if vector is not None}
        early: List[Expression] = []
        late: List[Expression] = []
        for conjunct in self.predicates:
            refs = conjunct.referenced_columns()
            if all(name in direct for name in refs):
                early.append(conjunct)
            else:
                late.append(conjunct)
        return early, late

    def _resolve_tile_late(self, tile: Tile, start: int, stop: int,
                           counters: ScanCounters,
                           resolved: Dict[str, Optional[ColumnVector]],
                           fallback: List[AccessRequest],
                           early: List[Expression],
                           late: List[Expression]) -> Batch:
        """Selection-vector scan of one tile slice: early conjuncts run
        on the direct columns, the selection they produce gates the
        fallback decode, late conjuncts run on the completed batch.
        Keep-mask intersection over conjuncts equals evaluating the
        folded Kleene AND, and the per-row shred is independent of its
        neighbours — so the surviving rows, their order and every
        column value are bit-identical to the eager path."""
        total = stop - start
        direct_batch = Batch({name: vector for name, vector
                              in resolved.items() if vector is not None},
                             total)
        keep = np.ones(total, dtype=bool)
        for conjunct in early:
            verdict = conjunct.evaluate(direct_batch)
            keep &= verdict.data.astype(bool) & ~verdict.null_mask
        selection = None if keep.all() else np.flatnonzero(keep)
        decoded = self._fallback_group(tile, fallback, start, stop,
                                       counters, selection=selection)
        if selection is None:
            columns = {name: (decoded[name] if vector is None else vector)
                       for name, vector in resolved.items()}
            batch = Batch(columns, total)
        else:
            columns = {name: (decoded[name] if vector is None
                              else vector.filter(keep))
                       for name, vector in resolved.items()}
            batch = Batch(columns, len(selection))
        for conjunct in late:
            if batch.length == 0:
                break
            verdict = conjunct.evaluate(batch)
            keep_late = verdict.data.astype(bool) & ~verdict.null_mask
            if not keep_late.all():
                batch = batch.filter(keep_late)
        return batch

    def _convert_column(self, column: ColumnVector, meta, request,
                        start: int, stop: int) -> Optional[ColumnVector]:
        """Cast rewriting (Section 4.3): map the stored column type onto
        the requested type, or None when only the fallback is correct."""
        stored = meta.column_type
        target = request.target
        data = column.data[start:stop]
        nulls = column.null_mask[start:stop].copy()
        if target == ColumnType.JSONB:
            return None  # `->` needs the real JSON value
        if stored == ColumnType.TIMESTAMP:
            if target == ColumnType.TIMESTAMP:
                return ColumnVector(target, data, nulls)
            return None  # Date/Time must not be textualized (Section 4.9)
        if stored == ColumnType.DECIMAL:
            if target in (ColumnType.FLOAT64, ColumnType.DECIMAL):
                return ColumnVector(ColumnType.FLOAT64,
                                    data.astype(np.float64), nulls)
            if target == ColumnType.INT64:
                return _float_to_int64(data, nulls)
            return None  # exact text of a numeric string needs JSONB
        if stored == ColumnType.INT64:
            if target == ColumnType.INT64:
                return ColumnVector(target, data, nulls)
            if target in (ColumnType.FLOAT64, ColumnType.DECIMAL):
                return ColumnVector(ColumnType.FLOAT64,
                                    data.astype(np.float64), nulls)
            if target == ColumnType.BOOL:
                return ColumnVector(target, data.astype(bool), nulls)
            if target == ColumnType.STRING:
                return ColumnVector(target, _int64_to_text(data), nulls)
            return None
        if stored == ColumnType.FLOAT64:
            if target in (ColumnType.FLOAT64, ColumnType.DECIMAL):
                return ColumnVector(ColumnType.FLOAT64, data, nulls)
            if target == ColumnType.INT64:
                return _float_to_int64(data, nulls)
            if target == ColumnType.STRING:
                return ColumnVector(target, _float64_to_text(data), nulls)
            return None
        if stored == ColumnType.BOOL:
            if target == ColumnType.BOOL:
                return ColumnVector(target, data, nulls)
            if target == ColumnType.INT64:
                return ColumnVector(target, data.astype(np.int64), nulls)
            if target == ColumnType.STRING:
                return ColumnVector(target, _bool_to_text(data), nulls)
            return None
        if stored == ColumnType.STRING:
            if target == ColumnType.STRING:
                return ColumnVector(target, data, nulls)
            if target in (ColumnType.INT64, ColumnType.FLOAT64,
                          ColumnType.DECIMAL, ColumnType.TIMESTAMP,
                          ColumnType.BOOL):
                return _parse_string_column(data, nulls, target)
            return None
        return None

    # ------------------------------------------------------------------
    # JSONB / text fallbacks

    def _plan_for(self, paths: Tuple[KeyPath, ...]) -> ShredPlan:
        plan = self._shred_plans.get(paths)
        if plan is None:
            plan = self._shred_plans[paths] = compile_paths(paths)
        return plan

    def _fallback_group(self, tile: Tile, requests: List[AccessRequest],
                        start: int, stop: int,
                        counters: ScanCounters,
                        selection: Optional[np.ndarray] = None) \
            -> Dict[str, ColumnVector]:
        """*selection* (slice-local row offsets, or ``None`` for all)
        is the late-materialization selection vector: only selected
        tuples are decoded.  The cache path ignores it for *storing* —
        a miss still decodes the full tile so cache keys stay
        selection-independent — and applies it when slicing out the
        result."""
        counters.fallback_tiles += len(requests)
        if not self.use_cache:
            return self._decode_fallback_group(tile, requests, start, stop,
                                               counters, selection)
        keys = {request.name: make_key(self.relation.name, tile.uid,
                                       request.path, request.target,
                                       request.as_text)
                for request in requests}
        resolved: Dict[str, ColumnVector] = {}
        missing: List[AccessRequest] = []
        found = GLOBAL_TILE_CACHE.lookup_many(
            [keys[request.name] for request in requests])
        for request in requests:
            cached = found.get(keys[request.name])
            if cached is None:
                counters.cache_misses += 1
                missing.append(request)
            else:
                counters.cache_hits += 1
                resolved[request.name] = cached
        if missing:
            # decode the whole tile once — one shred pass fills every
            # missed (path, type) and stores one cache entry per
            # request, so a k-path cache miss costs one decode, and
            # every later slice (this query or any concurrent one) is
            # a cache hit
            decoded = self._decode_fallback_group(tile, missing, 0,
                                                  tile.row_count, counters)
            GLOBAL_TILE_CACHE.store_many(
                (keys[name], vector) for name, vector in decoded.items())
            resolved.update(decoded)
        if selection is not None:
            offsets = selection + start
            return {name: ColumnVector(vector.type, vector.data[offsets],
                                       vector.null_mask[offsets])
                    for name, vector in resolved.items()}
        if start == 0 and stop == tile.row_count:
            return resolved
        return {name: ColumnVector(vector.type, vector.data[start:stop],
                                   vector.null_mask[start:stop])
                for name, vector in resolved.items()}

    def _decode_fallback_group(self, tile: Tile,
                               requests: List[AccessRequest],
                               start: int, stop: int,
                               counters: ScanCounters,
                               selection: Optional[np.ndarray] = None) \
            -> Dict[str, ColumnVector]:
        """Resolve a group of fallback requests over one tuple range.

        ``fallback_lookups`` counts logical (tuple, path) resolutions —
        identical whichever physical strategy runs below.  With a
        *selection*, only the selected tuples count (the spared ones go
        to ``fallback_rows_skipped``): the decode genuinely never
        touches them."""
        if selection is None:
            row_indices: Sequence[int] = range(start, stop)
        else:
            row_indices = [start + int(offset) for offset in selection]
            counters.fallback_rows_skipped += \
                ((stop - start) - len(row_indices)) * len(requests)
        counters.fallback_lookups += len(row_indices) * len(requests)
        builders = {
            request.name: ColumnBuilder(
                ColumnType.JSONB if request.target == ColumnType.JSONB
                else request.target)
            for request in requests}
        rows = tile.jsonb_rows
        if not self.multipath_shred:
            # ablation baseline: one full document traversal per path
            for request in requests:
                append = builders[request.name].append
                getter = _jsonb_getter(request)
                path = request.path
                for row in row_indices:
                    value = JsonbValue(rows[row]).get_path(path)
                    append(None if value is None else getter(value))
            return {name: builder.finish()
                    for name, builder in builders.items()}
        plan = self._plan_for(tuple(sorted({r.path for r in requests})))
        slots = [(plan.slots[request.path], _jsonb_getter(request),
                  builders[request.name].append) for request in requests]
        for row in row_indices:
            values = shred_jsonb(plan, rows[row])
            for slot, getter, append in slots:
                value = values[slot]
                append(None if value is None else getter(value))
        counters.shred_passes += len(row_indices)
        counters.shred_paths += len(row_indices) * len(plan)
        return {name: builder.finish() for name, builder in builders.items()}

    def _patch_conflicts(self, tile: Tile,
                         conflicts: List[Tuple[AccessRequest, ColumnVector,
                                               np.ndarray]],
                         start: int, counters: ScanCounters) -> None:
        """Section 3.4: on access, traverse the binary representation
        when the *stored* extracted value is NULL (a type outlier).
        All conflicted requests of the tile patch in one pass: each
        outlier tuple is shredded once for every conflicted path."""
        for _request, _vector, stored_nulls in conflicts:
            counters.fallback_lookups += int(np.count_nonzero(stored_nulls))
        if not self.multipath_shred or len(conflicts) == 1:
            for request, vector, stored_nulls in conflicts:
                path = request.path
                for local in np.flatnonzero(stored_nulls):
                    value = JsonbValue(
                        tile.jsonb_rows[start + int(local)]).get_path(path)
                    _patch_slot(vector, int(local), value, request)
            return
        plan = self._plan_for(tuple(sorted({r.path for r, _v, _n
                                            in conflicts})))
        needed = np.zeros(len(conflicts[0][2]), dtype=bool)
        for _request, _vector, stored_nulls in conflicts:
            needed |= stored_nulls
        for local in np.flatnonzero(needed):
            local = int(local)
            values = shred_jsonb(plan, tile.jsonb_rows[start + local])
            counters.shred_passes += 1
            for request, vector, stored_nulls in conflicts:
                if stored_nulls[local]:
                    counters.shred_paths += 1
                    _patch_slot(vector, local,
                                values[plan.slots[request.path]], request)

    def _resolve_text(self, start: int, stop: int,
                      counters: ScanCounters) -> Batch:
        # Raw text storage (PostgreSQL `json` / Hyper): the full-parse
        # cost the paper's JSON competitor pays.  Each document is
        # parsed *once* per scan and shared by every access request;
        # with shredding on, the parsed value is walked once for all
        # requested paths too.
        rows = self.relation.text_rows or []
        chunk = rows[start:stop]
        counters.rows_scanned += len(chunk)
        columns: Dict[str, Optional[ColumnVector]] = {}
        requests: List[AccessRequest] = []
        for request in self.requests:
            if request.path == ROWID_PATH:
                data = np.arange(start, start + len(chunk), dtype=np.int64)
                columns[request.name] = ColumnVector(ColumnType.INT64, data)
                continue
            columns[request.name] = None  # keeps the column order
            requests.append(request)
        if not requests:
            return Batch(columns, len(chunk))
        counters.fallback_lookups += len(chunk) * len(requests)
        counters.fallback_tiles += len(requests)
        builders = {request.name: ColumnBuilder(request.target)
                    for request in requests}
        if self.multipath_shred:
            plan = self._plan_for(tuple(sorted({r.path for r in requests})))
            slots = [(plan.slots[request.path], request,
                      builders[request.name].append) for request in requests]
            for row in chunk:
                values = shred_python(plan, json.loads(row))
                for slot, request, append in slots:
                    append(_typed_from_python(values[slot], request))
            counters.shred_passes += len(chunk)
            counters.shred_paths += len(chunk) * len(plan)
        else:
            for row in chunk:
                document = json.loads(row)
                for request in requests:
                    builders[request.name].append(_typed_from_python(
                        request.path.lookup(document), request))
        for name, builder in builders.items():
            columns[name] = builder.finish()
        return Batch(columns, len(chunk))


def _int64_to_text(data: np.ndarray) -> np.ndarray:
    """Vectorized ``str(int)`` (text access on an integer column)."""
    if len(data) == 0:
        return np.zeros(0, dtype=object)
    return np.char.mod("%d", data).astype(object)


def _bool_to_text(data: np.ndarray) -> np.ndarray:
    """Vectorized JSON bool rendering (``"true"`` / ``"false"``)."""
    return np.where(data, "true", "false").astype(object)


def _float64_to_text(data: np.ndarray) -> np.ndarray:
    """Text access on a float column: integral values render as their
    integer text (JSON ``1.0`` round-trips to ``"1"``), everything
    else as Python's shortest-roundtrip ``repr``.  Integral values in
    int64 range are formatted vectorized; the (rare) rest falls back
    to per-element formatting."""
    out = np.empty(len(data), dtype=object)
    if len(data) == 0:
        return out
    integral = np.isfinite(data) & (data == np.floor(data))
    small = integral & (np.abs(data) < 2.0**63)
    if small.any():
        out[small] = np.char.mod("%d", data[small].astype(np.int64)) \
            .astype(object)
    rest = ~small
    if rest.any():
        big = integral & rest
        out[big] = [str(int(item)) for item in data[big].tolist()]
        frac = rest & ~integral
        out[frac] = [repr(item) for item in data[frac].tolist()]
    return out


def _patch_slot(vector: ColumnVector, local: int,
                value: Optional[JsonbValue],
                request: AccessRequest) -> None:
    if value is None:
        return
    typed = _typed_from_jsonb(value, request)
    if typed is None:
        return
    vector.data[local] = typed
    vector.null_mask[local] = False


def _float_to_int64(data: np.ndarray, nulls: np.ndarray) -> ColumnVector:
    """Float-to-integer conversion that turns out-of-range values into
    SQL NULL instead of silently wrapping."""
    out_of_range = ~np.isfinite(data) | (data >= 2.0**63) | (data < -(2.0**63))
    safe = np.where(out_of_range, 0.0, data)
    return ColumnVector(ColumnType.INT64, safe.astype(np.int64),
                        nulls | out_of_range)


def _parse_string_column(data: np.ndarray, nulls: np.ndarray,
                         target: ColumnType) -> ColumnVector:
    out_nulls = nulls.copy()
    if target == ColumnType.TIMESTAMP:
        out = np.zeros(len(data), dtype=np.int64)
        for index, item in enumerate(data):
            parsed = parse_datetime_string(item) if isinstance(item, str) else None
            if parsed is None:
                out_nulls[index] = True
            else:
                out[index] = parsed
        return ColumnVector(target, out, out_nulls)
    if target == ColumnType.BOOL:
        out = np.zeros(len(data), dtype=bool)
        for index, item in enumerate(data):
            if item == "true":
                out[index] = True
            elif item != "false":
                out_nulls[index] = True
        return ColumnVector(target, out, out_nulls)
    dtype = np.int64 if target == ColumnType.INT64 else np.float64
    out = np.zeros(len(data), dtype=dtype)
    caster = int if target == ColumnType.INT64 else float
    for index, item in enumerate(data):
        try:
            out[index] = caster(item)
        except (TypeError, ValueError):
            out_nulls[index] = True
    result_type = ColumnType.FLOAT64 if target == ColumnType.DECIMAL else target
    return ColumnVector(result_type, out, out_nulls)


#: unbound typed getters per target (cast rewriting, Section 4.3).
#: Every getter maps a JSON null to ``None`` itself, so no separate
#: ``is_null`` probe is needed per value.
_JSONB_GETTERS = {
    ColumnType.JSONB: JsonbValue.as_python,
    ColumnType.INT64: JsonbValue.as_int,
    ColumnType.FLOAT64: JsonbValue.as_float,
    ColumnType.DECIMAL: JsonbValue.as_float,
    ColumnType.BOOL: JsonbValue.as_bool,
    ColumnType.TIMESTAMP: JsonbValue.as_timestamp,
    ColumnType.STRING: JsonbValue.as_text,
}


def _jsonb_getter(request: AccessRequest):
    """The per-value conversion the fallback loops hoist out of the
    row loop."""
    return _JSONB_GETTERS.get(request.target, JsonbValue.as_text)


def _typed_from_jsonb(value: Optional[JsonbValue],
                      request: AccessRequest) -> object:
    if value is None:
        return None
    return _JSONB_GETTERS.get(request.target, JsonbValue.as_text)(value)


def _typed_from_python(raw: object, request: AccessRequest) -> object:
    """Coercion used by the raw-text format (after a full parse)."""
    if raw is None:
        return None
    target = request.target
    if target == ColumnType.JSONB:
        return raw
    if target == ColumnType.INT64:
        if isinstance(raw, bool):
            return int(raw)
        if isinstance(raw, (int, float)):
            return int(raw)
        try:
            return int(raw)
        except (TypeError, ValueError):
            try:
                return int(float(raw))
            except (TypeError, ValueError):
                return None
    if target in (ColumnType.FLOAT64, ColumnType.DECIMAL):
        try:
            return float(raw)
        except (TypeError, ValueError):
            return None
    if target == ColumnType.BOOL:
        if isinstance(raw, bool):
            return raw
        return {"true": True, "false": False}.get(str(raw))
    if target == ColumnType.TIMESTAMP:
        if isinstance(raw, str):
            return parse_datetime_string(raw)
        if isinstance(raw, int):
            return raw
        return None
    # text semantics of ->> on containers: compact JSON
    if isinstance(raw, (dict, list)):
        return json.dumps(raw, separators=(",", ":"))
    if isinstance(raw, bool):
        return "true" if raw else "false"
    if isinstance(raw, float) and raw == int(raw):
        return str(int(raw))
    return str(raw)
