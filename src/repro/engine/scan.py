"""Table scans with access-expression push-down (Sections 4.2-4.5, 4.8).

The scan receives *access requests* — the (key path, requested type,
as-text) triples that the query uses on this table — and resolves each
request per tile:

* an extracted column of a compatible type streams out directly (cast
  rewriting, Section 4.3: the requested type picks the cheapest
  conversion from the stored column type);
* date/time columns refuse text conversion (Section 4.9) and numeric
  strings refuse lossy text reconstruction, both falling back to JSONB;
* NULL slots of type-conflicting columns re-check the binary fallback
  per tuple (Section 3.4);
* everything else is a per-tuple JSONB traversal (or a full text parse
  for the raw JSON format) — the expensive path the paper measures.

Tiles whose header proves a null-rejected path cannot occur are skipped
entirely (Section 4.8).
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, fields
from functools import partial
from typing import Dict, Iterator, List, Optional, Sequence

import numpy as np

from repro.core.datetimes import parse_datetime_string
from repro.core.jsonpath import KeyPath
from repro.core.types import ColumnType
from repro.engine.batch import Batch
from repro.engine.expressions import Expression
from repro.engine.morsels import Morsel, run_ordered
from repro.jsonb.access import JsonbValue
from repro.storage.column import ColumnBuilder, ColumnVector
from repro.storage.formats import StorageFormat
from repro.storage.relation import Relation
from repro.storage.tile_cache import GLOBAL_TILE_CACHE, make_key
from repro.tiles.tile import Tile

ROWID_PATH = KeyPath(("#rowid",))


@dataclass(frozen=True)
class AccessRequest:
    """One pushed-down access expression (a scan placeholder)."""

    path: KeyPath
    target: ColumnType
    as_text: bool
    name: str

    @staticmethod
    def make(alias: str, path: KeyPath, target: ColumnType,
             as_text: bool) -> "AccessRequest":
        marker = "text" if as_text else "json"
        name = f"{alias}${path}::{target.name}${marker}"
        return AccessRequest(path, target, as_text, name)


@dataclass
class ScanCounters:
    """Observability for the Section 4.8 / Table 5 experiments.

    Counters are mergeable: parallel workers accumulate into
    thread-local instances and fold them into the scan's shared
    instance under a lock (all fields are commutative sums).
    """

    tiles_total: int = 0
    tiles_skipped: int = 0
    rows_scanned: int = 0
    fallback_lookups: int = 0
    #: (tile, access) resolutions served entirely from the JSONB/text
    #: fallback — no extracted column existed for the requested path.
    #: The maintenance subsystem reads this as direct evidence that a
    #: table degraded to fallback scans (DESIGN.md "Online maintenance").
    fallback_tiles: int = 0
    cache_hits: int = 0
    cache_misses: int = 0

    def merge(self, other: "ScanCounters") -> "ScanCounters":
        for field in fields(self):
            setattr(self, field.name,
                    getattr(self, field.name) + getattr(other, field.name))
        return self

    def as_dict(self) -> Dict[str, int]:
        return {field.name: getattr(self, field.name)
                for field in fields(self)}


@dataclass(frozen=True)
class RangePrune:
    """A pushed-down comparison usable against per-tile zone maps:
    ``column op literal`` with the column on the left."""

    path: KeyPath
    op: str  # = < <= > >=
    value: object

    def excludes(self, low: object, high: object) -> bool:
        """True when no value in [low, high] can satisfy the predicate."""
        try:
            if self.op == "=":
                return self.value < low or self.value > high
            if self.op == "<":
                return low >= self.value
            if self.op == "<=":
                return low > self.value
            if self.op == ">":
                return high <= self.value
            if self.op == ">=":
                return high < self.value
        except TypeError:
            return False  # incomparable types: never prune
        return False


class TableScan:
    """Produce one batch per tile (or per fixed chunk for un-tiled
    formats), resolving the access requests."""

    def __init__(self, relation: Relation, requests: Sequence[AccessRequest],
                 predicate: Optional[Expression] = None,
                 skip_paths: Sequence[KeyPath] = (),
                 range_prunes: Sequence[RangePrune] = (),
                 enable_skipping: bool = True,
                 batch_rows: int = 4096,
                 parallelism: int = 1,
                 use_cache: bool = False):
        self.relation = relation
        self.requests = list(requests)
        self.predicate = predicate
        self.skip_paths = list(skip_paths)
        self.range_prunes = list(range_prunes)
        self.enable_skipping = enable_skipping
        self.batch_rows = batch_rows
        self.parallelism = max(1, parallelism)
        self.use_cache = use_cache
        self.counters = ScanCounters()
        self._counters_lock = threading.Lock()

    # ------------------------------------------------------------------
    # morsel enumeration + dispatch

    def morsels(self) -> List[Morsel]:
        """Chop the relation into batch-sized morsels, applying tile
        skipping (Section 4.8) at enumeration time so skipped tiles
        never reach a worker."""
        morsels: List[Morsel] = []
        if self.relation.format == StorageFormat.JSON:
            rows = self.relation.text_rows or []
            for start in range(0, len(rows), self.batch_rows):
                stop = min(start + self.batch_rows, len(rows))
                morsels.append(Morsel(len(morsels), None, start, stop))
            return morsels
        for tile in self.relation.tiles:
            self.counters.tiles_total += 1
            if self._can_skip(tile):
                self.counters.tiles_skipped += 1
                continue
            self.counters.rows_scanned += tile.row_count
            for start in range(0, tile.row_count, self.batch_rows):
                stop = min(start + self.batch_rows, tile.row_count)
                morsels.append(Morsel(len(morsels), tile, start, stop))
        return morsels

    def resolve_morsel(self, morsel: Morsel) -> Batch:
        """Scan + predicate for one morsel; safe to call from any
        worker thread (counters fold under a lock)."""
        local = ScanCounters()
        if morsel.tile is None:
            batch = self._resolve_text(morsel.start, morsel.stop, local)
        else:
            batch = self._resolve_tile(morsel.tile, morsel.start,
                                       morsel.stop, local)
        batch = self._apply_predicate(batch)
        with self._counters_lock:
            self.counters.merge(local)
        return batch

    def batches(self) -> Iterator[Batch]:
        morsels = self.morsels()
        if self.parallelism > 1 and len(morsels) > 1:
            tasks = [partial(self.resolve_morsel, morsel)
                     for morsel in morsels]
            for batch in run_ordered(tasks, self.parallelism):
                if batch.length:
                    yield batch
            return
        for morsel in morsels:
            batch = self.resolve_morsel(morsel)
            if batch.length:
                yield batch

    def _can_skip(self, tile: Tile) -> bool:
        if not self.enable_skipping:
            return False
        if not self.relation.format.supports_skipping:
            return False
        if any(not tile.header.may_contain(path)
               for path in self.skip_paths
               if path != ROWID_PATH):
            return True
        # zone maps: a comparison no value in the tile's range can
        # satisfy skips the tile (the comparison is null-rejecting, so
        # rows lacking the path contribute nothing either)
        for prune in self.range_prunes:
            bounds = tile.header.column_bounds(prune.path)
            if bounds is not None and prune.excludes(*bounds):
                return True
        return False

    def _apply_predicate(self, batch: Batch) -> Batch:
        if self.predicate is None or batch.length == 0:
            return batch
        verdict = self.predicate.evaluate(batch)
        keep = verdict.data.astype(bool) & ~verdict.null_mask
        if keep.all():
            return batch
        return batch.filter(keep)

    # ------------------------------------------------------------------
    # resolution per tile

    def _resolve_tile(self, tile: Tile, start: int, stop: int,
                      counters: ScanCounters) -> Batch:
        columns: Dict[str, ColumnVector] = {}
        for request in self.requests:
            columns[request.name] = self._resolve_request(tile, request,
                                                          start, stop,
                                                          counters)
        return Batch(columns, stop - start)

    def _resolve_request(self, tile: Tile, request: AccessRequest,
                         start: int, stop: int,
                         counters: ScanCounters) -> ColumnVector:
        if request.path == ROWID_PATH:
            data = np.arange(tile.first_row + start, tile.first_row + stop,
                             dtype=np.int64)
            return ColumnVector(ColumnType.INT64, data)
        column = tile.column(request.path)
        if column is None:
            return self._fallback_all(tile, request, start, stop, counters)
        meta = tile.header.columns[request.path]
        direct = self._convert_column(column, meta, request, start, stop)
        if direct is None:
            return self._fallback_all(tile, request, start, stop, counters)
        if meta.has_type_conflicts and direct.null_mask.any():
            # Section 3.4: only *stored* NULL slots mark "consult the
            # JSONB"; NULLs the cast itself introduced (out-of-range
            # float, unparseable string) are genuine SQL NULLs.  When
            # the slice has no stored NULL, skip the fallback — and the
            # defensive copy — entirely.
            stored_nulls = column.null_mask[start:stop]
            if stored_nulls.any():
                # the direct vector may alias tile storage: copy before
                # the fallback patches outlier values in
                direct = ColumnVector(direct.type, direct.data.copy(),
                                      direct.null_mask)
                self._fallback_conflicts(tile, request, direct, start,
                                         stored_nulls, counters)
        return direct

    def _convert_column(self, column: ColumnVector, meta, request,
                        start: int, stop: int) -> Optional[ColumnVector]:
        """Cast rewriting (Section 4.3): map the stored column type onto
        the requested type, or None when only the fallback is correct."""
        stored = meta.column_type
        target = request.target
        data = column.data[start:stop]
        nulls = column.null_mask[start:stop].copy()
        if target == ColumnType.JSONB:
            return None  # `->` needs the real JSON value
        if stored == ColumnType.TIMESTAMP:
            if target == ColumnType.TIMESTAMP:
                return ColumnVector(target, data, nulls)
            return None  # Date/Time must not be textualized (Section 4.9)
        if stored == ColumnType.DECIMAL:
            if target in (ColumnType.FLOAT64, ColumnType.DECIMAL):
                return ColumnVector(ColumnType.FLOAT64,
                                    data.astype(np.float64), nulls)
            if target == ColumnType.INT64:
                return _float_to_int64(data, nulls)
            return None  # exact text of a numeric string needs JSONB
        if stored == ColumnType.INT64:
            if target == ColumnType.INT64:
                return ColumnVector(target, data, nulls)
            if target in (ColumnType.FLOAT64, ColumnType.DECIMAL):
                return ColumnVector(ColumnType.FLOAT64,
                                    data.astype(np.float64), nulls)
            if target == ColumnType.BOOL:
                return ColumnVector(target, data.astype(bool), nulls)
            if target == ColumnType.STRING:
                text = np.array([str(item) for item in data.tolist()],
                                dtype=object)
                return ColumnVector(target, text, nulls)
            return None
        if stored == ColumnType.FLOAT64:
            if target in (ColumnType.FLOAT64, ColumnType.DECIMAL):
                return ColumnVector(ColumnType.FLOAT64, data, nulls)
            if target == ColumnType.INT64:
                return _float_to_int64(data, nulls)
            if target == ColumnType.STRING:
                text = np.array(
                    [str(int(item)) if item == int(item) else repr(item)
                     for item in data.tolist()],
                    dtype=object,
                )
                return ColumnVector(target, text, nulls)
            return None
        if stored == ColumnType.BOOL:
            if target == ColumnType.BOOL:
                return ColumnVector(target, data, nulls)
            if target == ColumnType.INT64:
                return ColumnVector(target, data.astype(np.int64), nulls)
            if target == ColumnType.STRING:
                text = np.array(["true" if item else "false"
                                 for item in data.tolist()], dtype=object)
                return ColumnVector(target, text, nulls)
            return None
        if stored == ColumnType.STRING:
            if target == ColumnType.STRING:
                return ColumnVector(target, data, nulls)
            if target in (ColumnType.INT64, ColumnType.FLOAT64,
                          ColumnType.DECIMAL, ColumnType.TIMESTAMP,
                          ColumnType.BOOL):
                return _parse_string_column(data, nulls, target)
            return None
        return None

    # ------------------------------------------------------------------
    # JSONB / text fallbacks

    def _fallback_all(self, tile: Tile, request: AccessRequest,
                      start: int, stop: int,
                      counters: ScanCounters) -> ColumnVector:
        counters.fallback_tiles += 1
        if self.use_cache:
            key = make_key(self.relation.name, tile.uid, request.path,
                           request.target, request.as_text)
            cached = GLOBAL_TILE_CACHE.lookup(key)
            if cached is None:
                counters.cache_misses += 1
                # decode the whole tile once so every later slice — in
                # this query or any concurrent one — is a cache hit
                cached = self._decode_fallback(tile, request, 0,
                                               tile.row_count, counters)
                GLOBAL_TILE_CACHE.store(key, cached)
            else:
                counters.cache_hits += 1
            if start == 0 and stop == tile.row_count:
                return cached
            return ColumnVector(cached.type, cached.data[start:stop],
                                cached.null_mask[start:stop])
        return self._decode_fallback(tile, request, start, stop, counters)

    def _decode_fallback(self, tile: Tile, request: AccessRequest,
                         start: int, stop: int,
                         counters: ScanCounters) -> ColumnVector:
        result_type = (ColumnType.JSONB if request.target == ColumnType.JSONB
                       else request.target)
        builder = ColumnBuilder(result_type)
        path = request.path
        counters.fallback_lookups += stop - start
        for row in range(start, stop):
            value = JsonbValue(tile.jsonb_rows[row]).get_path(path)
            builder.append(_typed_from_jsonb(value, request))
        return builder.finish()

    def _fallback_conflicts(self, tile: Tile, request: AccessRequest,
                            vector: ColumnVector, start: int,
                            stored_nulls: np.ndarray,
                            counters: ScanCounters) -> None:
        """Section 3.4: on access, traverse the binary representation
        when the *stored* extracted value is NULL (a type outlier)."""
        path = request.path
        for local in np.flatnonzero(stored_nulls):
            value = JsonbValue(tile.jsonb_rows[start + int(local)]).get_path(path)
            counters.fallback_lookups += 1
            if value is None:
                continue
            typed = _typed_from_jsonb(value, request)
            if typed is None:
                continue
            vector.data[local] = typed
            vector.null_mask[local] = False

    def _resolve_text(self, start: int, stop: int,
                      counters: ScanCounters) -> Batch:
        # Raw text storage (PostgreSQL `json` / Hyper): every access
        # expression re-parses the document string — the full-parse
        # cost the paper's JSON competitor pays per lookup.
        rows = self.relation.text_rows or []
        chunk = rows[start:stop]
        counters.rows_scanned += len(chunk)
        columns: Dict[str, ColumnVector] = {}
        for request in self.requests:
            if request.path == ROWID_PATH:
                data = np.arange(start, start + len(chunk), dtype=np.int64)
                columns[request.name] = ColumnVector(ColumnType.INT64, data)
                continue
            builder = ColumnBuilder(request.target)
            for row in chunk:
                raw = request.path.lookup(json.loads(row))
                builder.append(_typed_from_python(raw, request))
            counters.fallback_lookups += len(chunk)
            counters.fallback_tiles += 1
            columns[request.name] = builder.finish()
        return Batch(columns, len(chunk))


def _float_to_int64(data: np.ndarray, nulls: np.ndarray) -> ColumnVector:
    """Float-to-integer conversion that turns out-of-range values into
    SQL NULL instead of silently wrapping."""
    out_of_range = ~np.isfinite(data) | (data >= 2.0**63) | (data < -(2.0**63))
    safe = np.where(out_of_range, 0.0, data)
    return ColumnVector(ColumnType.INT64, safe.astype(np.int64),
                        nulls | out_of_range)


def _parse_string_column(data: np.ndarray, nulls: np.ndarray,
                         target: ColumnType) -> ColumnVector:
    out_nulls = nulls.copy()
    if target == ColumnType.TIMESTAMP:
        out = np.zeros(len(data), dtype=np.int64)
        for index, item in enumerate(data):
            parsed = parse_datetime_string(item) if isinstance(item, str) else None
            if parsed is None:
                out_nulls[index] = True
            else:
                out[index] = parsed
        return ColumnVector(target, out, out_nulls)
    if target == ColumnType.BOOL:
        out = np.zeros(len(data), dtype=bool)
        for index, item in enumerate(data):
            if item == "true":
                out[index] = True
            elif item != "false":
                out_nulls[index] = True
        return ColumnVector(target, out, out_nulls)
    dtype = np.int64 if target == ColumnType.INT64 else np.float64
    out = np.zeros(len(data), dtype=dtype)
    caster = int if target == ColumnType.INT64 else float
    for index, item in enumerate(data):
        try:
            out[index] = caster(item)
        except (TypeError, ValueError):
            out_nulls[index] = True
    result_type = ColumnType.FLOAT64 if target == ColumnType.DECIMAL else target
    return ColumnVector(result_type, out, out_nulls)


def _typed_from_jsonb(value: Optional[JsonbValue],
                      request: AccessRequest) -> object:
    if value is None or value.is_null():
        return None
    target = request.target
    if target == ColumnType.JSONB:
        return value.as_python()
    if target == ColumnType.INT64:
        return value.as_int()
    if target in (ColumnType.FLOAT64, ColumnType.DECIMAL):
        return value.as_float()
    if target == ColumnType.BOOL:
        return value.as_bool()
    if target == ColumnType.TIMESTAMP:
        return value.as_timestamp()
    return value.as_text()


def _typed_from_python(raw: object, request: AccessRequest) -> object:
    """Coercion used by the raw-text format (after a full parse)."""
    if raw is None:
        return None
    target = request.target
    if target == ColumnType.JSONB:
        return raw
    if target == ColumnType.INT64:
        if isinstance(raw, bool):
            return int(raw)
        if isinstance(raw, (int, float)):
            return int(raw)
        try:
            return int(raw)
        except (TypeError, ValueError):
            try:
                return int(float(raw))
            except (TypeError, ValueError):
                return None
    if target in (ColumnType.FLOAT64, ColumnType.DECIMAL):
        try:
            return float(raw)
        except (TypeError, ValueError):
            return None
    if target == ColumnType.BOOL:
        if isinstance(raw, bool):
            return raw
        return {"true": True, "false": False}.get(str(raw))
    if target == ColumnType.TIMESTAMP:
        if isinstance(raw, str):
            return parse_datetime_string(raw)
        if isinstance(raw, int):
            return raw
        return None
    # text semantics of ->> on containers: compact JSON
    if isinstance(raw, (dict, list)):
        return json.dumps(raw, separators=(",", ":"))
    if isinstance(raw, bool):
        return "true" if raw else "false"
    if isinstance(raw, float) and raw == int(raw):
        return str(int(raw))
    return str(raw)
