"""Vectorized batch kernels (ROADMAP item 3: "Vectorized kernels and
Arrow-native columnar interop").

The engine's remaining per-tuple loops — multi-key GROUP BY, the
generic hash-join build/probe, ORDER BY's Python row comparator —
all reduce to the same primitive: *factorization*.  Each key
:class:`~repro.storage.column.ColumnVector` is canonicalized to dense
int codes (``np.unique(..., return_inverse=True)``; NULL rows get a
dedicated sentinel code), multi-key codes fold into one mixed-radix
group id, and the per-row work becomes array-at-a-time numpy.

Bit-identity contract.  Every kernel here must produce *exactly* the
rows the per-tuple reference paths in ``operators.py`` produce — the
differential suite (``tests/test_kernels.py``) asserts it.  The three
load-bearing facts:

* ``np.add.at`` is unbuffered and applies its updates in element
  order, so accumulating a batch into persistent per-group float64
  slots replays the serial loop's exact float-addition sequence;
* ``np.unique(..., return_index=True)`` uses a stable sort, so the
  representative kept for a run of ``==``-equal values is the first
  occurrence — the same value a dict probe would have stored;
* ``np.lexsort`` and stable argsort preserve input order on ties,
  matching Python's stable ``list.sort`` and the insertion-ordered
  build lists of the join hash table.

Where numpy semantics and the per-tuple semantics could diverge —
NaN keys (dict: every NaN its own group; ``np.unique``: collapsed),
mixed-sign zeros under min/max, int64 sums near overflow, arrays of
incomparable objects — the kernel *declines the batch before mutating
any state* and the caller falls back to the per-tuple path, which is
retained as the differential-test oracle.  Declines are observable as
``fallback_rows`` in :class:`~repro.engine.scan.ScanCounters`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.storage.column import ColumnVector

#: running int64 sums refuse batches that could push any accumulator
#: past this (headroom below 2**63 so no intermediate prefix wraps)
_INT64_BOUND = 2 ** 62


class Factorized:
    """Dense dictionary codes for one vector.

    ``codes[i]`` is in ``[0, k)`` for valid rows and equals ``k`` (the
    NULL sentinel) for NULL rows; ``values[j]`` is the Python scalar
    for code ``j`` (ascending order, first-occurrence representative);
    ``uniques`` keeps the sorted distinct values as a numpy array for
    ``searchsorted`` probing.
    """

    __slots__ = ("codes", "values", "uniques")

    def __init__(self, codes: np.ndarray, values: List[object],
                 uniques: np.ndarray):
        self.codes = codes
        self.values = values
        self.uniques = uniques

    @property
    def width(self) -> int:
        """Radix of this key: distinct values + the NULL sentinel."""
        return len(self.values) + 1

    def decode(self, row: int) -> object:
        """Python value of *row* (``None`` for the NULL sentinel) —
        identical to what ``_scalar`` yields for the same slot."""
        code = int(self.codes[row])
        return None if code >= len(self.values) else self.values[code]


def factorize(vector: ColumnVector) -> Optional[Factorized]:
    """Dictionary-encode *vector*, or ``None`` when dense codes cannot
    reproduce per-tuple semantics (NaN present, incomparable objects).
    """
    data, mask = vector.data, vector.null_mask
    n = len(data)
    valid = ~mask
    vals = data[valid]
    if len(vals) == 0:
        return Factorized(np.zeros(n, dtype=np.int64), [],
                          np.empty(0, dtype=data.dtype))
    if data.dtype.kind == "f" and np.isnan(vals).any():
        return None  # dict keys treat every NaN as its own group
    try:
        uniques, inverse = np.unique(vals, return_inverse=True)
        if data.dtype == object:
            # uniques are first-occurrence representatives (stable
            # sort); a NaN hiding in an object column surfaces here
            values = list(uniques)
            if any(isinstance(v, float) and v != v for v in values):
                return None
        else:
            values = [v.item() for v in uniques]
    except TypeError:
        return None  # mixed incomparable types (e.g. str vs int)
    codes = np.full(n, len(values), dtype=np.int64)
    codes[valid] = inverse
    return Factorized(codes, values, uniques)


def combine_codes(factors: Sequence[Factorized]) -> np.ndarray:
    """Fold per-key codes into one injective combined code per row
    (mixed radix; NULL sentinels participate like ordinary values).
    Re-densifies through ``np.unique`` whenever the running radix
    nears int64 range, so any number of keys is safe."""
    comb = factors[0].codes
    radix = factors[0].width
    for factor in factors[1:]:
        width = factor.width
        if radix * width >= _INT64_BOUND:
            dense, comb = np.unique(comb, return_inverse=True)
            comb = comb.astype(np.int64)
            radix = len(dense)
        comb = comb * width + factor.codes
        radix *= width
    return comb


# ----------------------------------------------------------------------
# GROUP BY


def _type_family(value: object) -> object:
    """Comparison family of a Python scalar: all numeric types
    inter-compare exactly; anything else only within its own type."""
    return "num" if isinstance(value, (int, float, bool)) else type(value)


class _Slot:
    """Per-aggregate kernel state.  ``prepare`` inspects one batch and
    returns an opaque plan (or ``None`` to decline — it must not mutate
    anything); ``apply`` commits the plan; ``state_for`` converts one
    group's state to the per-tuple representation for spilling."""

    def prepare(self, vector: Optional[ColumnVector], length: int):
        raise NotImplementedError

    def apply(self, gids: np.ndarray, plan, ngroups: int) -> None:
        raise NotImplementedError

    def state_for(self, gid: int) -> List:
        raise NotImplementedError


def _grown(array: np.ndarray, n: int, fill) -> np.ndarray:
    if len(array) >= n:
        return array
    grown = np.full(max(n, 2 * len(array), 16), fill, dtype=array.dtype)
    grown[:len(array)] = array
    return grown


class _CountSlot(_Slot):
    """count(*) and count(expr)."""

    def __init__(self, star: bool):
        self.star = star
        self.counts = np.zeros(0, dtype=np.int64)

    def prepare(self, vector, length):
        if self.star:
            return np.ones(length, dtype=bool)
        return ~vector.null_mask

    def apply(self, gids, plan, ngroups):
        self.counts = _grown(self.counts, ngroups, 0)
        add = np.bincount(gids[plan], minlength=0)
        self.counts[:len(add)] += add

    def state_for(self, gid):
        return [int(self.counts[gid])]


class _SumIntSlot(_Slot):
    """SUM over int64 inputs: exact int64 accumulation guarded by a
    running bound so no intermediate prefix can wrap (the serial loop
    accumulates arbitrary-precision Python ints)."""

    def __init__(self):
        self.acc = np.zeros(0, dtype=np.int64)
        self.bound = 0

    def prepare(self, vector, length):
        if vector.data.dtype != np.int64:
            return None
        valid = ~vector.null_mask
        vals = vector.data[valid]
        if len(vals):
            top = max(abs(int(vals.max())), abs(int(vals.min())))
            if self.bound + len(vals) * top >= _INT64_BOUND:
                return None
            step = len(vals) * top
        else:
            step = 0
        return valid, vals, step

    def apply(self, gids, plan, ngroups):
        valid, vals, step = plan
        self.acc = _grown(self.acc, ngroups, 0)
        np.add.at(self.acc, gids[valid], vals)
        self.bound += step

    def state_for(self, gid):
        return [int(self.acc[gid])]


class _SumFloatSlot(_Slot):
    """SUM/AVG float accumulation.  ``np.add.at`` into a persistent
    float64 slot replays the serial ``state += value`` sequence
    bit-for-bit (updates apply in element = row order, unbuffered)."""

    def __init__(self, with_count: bool):
        self.with_count = with_count
        self.acc = np.zeros(0, dtype=np.float64)
        self.counts = np.zeros(0, dtype=np.int64)

    def prepare(self, vector, length):
        kind = vector.data.dtype.kind
        if kind not in ("f", "i"):
            return None
        valid = ~vector.null_mask
        vals = vector.data[valid]
        if kind == "i":
            if not self.with_count:
                return None  # plain int SUM stays exact in _SumIntSlot
            # AVG over ints: the serial state starts at 0.0, so every
            # update is float64 addition — int->float64 conversion here
            # rounds identically to Python's ``float += int``
            vals = vals.astype(np.float64)
        return valid, vals

    def apply(self, gids, plan, ngroups):
        valid, vals = plan
        self.acc = _grown(self.acc, ngroups, 0.0)
        np.add.at(self.acc, gids[valid], vals)
        if self.with_count:
            self.counts = _grown(self.counts, ngroups, 0)
            add = np.bincount(gids[valid], minlength=0)
            self.counts[:len(add)] += add

    def state_for(self, gid):
        if self.with_count:
            return [float(self.acc[gid]), int(self.counts[gid])]
        return [float(self.acc[gid])]


class _MinMaxNumSlot(_Slot):
    """MIN/MAX over int64/float64: exact comparisons, so
    ``np.minimum.at``/``np.maximum.at`` match the serial strict-``<``
    scan for every total order numpy and Python agree on.  Declined:
    NaN (serial keeps the running value, numpy propagates NaN) and
    mixed-sign zeros (serial keeps the first-seen zero)."""

    def __init__(self, is_min: bool):
        self.is_min = is_min
        self.acc: Optional[np.ndarray] = None
        self.seen = np.zeros(0, dtype=np.int64)

    def prepare(self, vector, length):
        dtype = vector.data.dtype
        if dtype not in (np.dtype(np.int64), np.dtype(np.float64)):
            return None
        if self.acc is not None and self.acc.dtype != dtype:
            return None
        valid = ~vector.null_mask
        vals = vector.data[valid]
        if dtype.kind == "f" and len(vals):
            if np.isnan(vals).any():
                return None
            zeros = vals == 0
            if zeros.any() and np.signbit(vals[zeros]).any():
                return None
        return valid, vals

    def _init_value(self, dtype):
        if dtype.kind == "f":
            return np.inf if self.is_min else -np.inf
        return np.iinfo(np.int64).max if self.is_min \
            else np.iinfo(np.int64).min

    def apply(self, gids, plan, ngroups):
        valid, vals = plan
        if self.acc is None:
            self.acc = np.zeros(0, dtype=vals.dtype)
        fill = self._init_value(self.acc.dtype)
        if len(self.acc) < ngroups:
            grown = np.full(max(ngroups, 2 * len(self.acc), 16), fill,
                            dtype=self.acc.dtype)
            grown[:len(self.acc)] = self.acc
            self.acc = grown
        self.seen = _grown(self.seen, ngroups, 0)
        reducer = np.minimum if self.is_min else np.maximum
        reducer.at(self.acc, gids[valid], vals)
        add = np.bincount(gids[valid], minlength=0)
        self.seen[:len(add)] += add

    def state_for(self, gid):
        if self.acc is None or not self.seen[gid]:
            return [None]
        return [self.acc[gid].item()]


class _MinMaxObjSlot(_Slot):
    """MIN/MAX over object columns (strings, JSONB scalars): factorize
    the batch, take the extreme *code* per group (codes are
    order-isomorphic to values within a batch), then merge the few
    per-group representatives against the running Python extremes."""

    def __init__(self, is_min: bool):
        self.is_min = is_min
        self.extremes: List[object] = []
        self.family: Optional[object] = None

    def prepare(self, vector, length):
        factor = factorize(vector)
        if factor is None:
            return None
        if factor.values:
            families = {_type_family(v) for v in factor.values}
            if len(families) > 1:
                return None
            family = families.pop()
            if self.family is not None and family != self.family:
                return None  # cross-batch merge would not compare
            return factor, family
        return factor, self.family

    def apply(self, gids, plan, ngroups):
        factor, family = plan
        self.family = family
        while len(self.extremes) < ngroups:
            self.extremes.append(None)
        k = len(factor.values)
        if not k:
            return
        valid = factor.codes < k
        if self.is_min:
            best = np.full(ngroups, k, dtype=np.int64)
            np.minimum.at(best, gids[valid], factor.codes[valid])
            touched = best < k
        else:
            best = np.full(ngroups, -1, dtype=np.int64)
            np.maximum.at(best, gids[valid], factor.codes[valid])
            touched = best >= 0
        for gid in np.flatnonzero(touched):
            candidate = factor.values[int(best[gid])]
            current = self.extremes[gid]
            if current is None or (candidate < current if self.is_min
                                   else candidate > current):
                self.extremes[gid] = candidate

    def state_for(self, gid):
        return [self.extremes[gid]]


class _CountDistinctSlot(_Slot):
    """count(distinct expr): factorize the batch, deduplicate
    ``(group, code)`` pairs, and touch the per-group Python sets once
    per distinct pair instead of once per row."""

    def __init__(self):
        self.sets: List[set] = []

    def prepare(self, vector, length):
        factor = factorize(vector)
        if factor is None:
            return None
        return factor

    def apply(self, gids, plan, ngroups):
        factor = plan
        while len(self.sets) < ngroups:
            self.sets.append(set())
        k = len(factor.values)
        if not k:
            return
        valid = factor.codes < k
        pairs = np.unique(gids[valid] * k + factor.codes[valid])
        for pair in pairs:
            gid, code = divmod(int(pair), k)
            self.sets[gid].add(factor.values[code])

    def state_for(self, gid):
        return [self.sets[gid]]


def _make_slot(spec) -> Optional[_Slot]:
    from repro.core.types import ColumnType

    if spec.func == "count_star":
        return _CountSlot(star=True)
    if spec.func == "count":
        return _CountSlot(star=False)
    if spec.func == "count_distinct":
        return _CountDistinctSlot()
    result = spec.expr.result_type if spec.expr is not None else None
    if spec.func == "sum":
        if result in (ColumnType.INT64, ColumnType.TIMESTAMP):
            return _SumIntSlot()
        if result in (ColumnType.FLOAT64, ColumnType.DECIMAL):
            return _SumFloatSlot(with_count=False)
        return None
    if spec.func == "avg":
        if result in (ColumnType.INT64, ColumnType.TIMESTAMP,
                      ColumnType.FLOAT64, ColumnType.DECIMAL):
            return _SumFloatSlot(with_count=True)
        return None
    if spec.func in ("min", "max"):
        if result in (ColumnType.INT64, ColumnType.TIMESTAMP,
                      ColumnType.FLOAT64, ColumnType.DECIMAL):
            return _MinMaxNumSlot(is_min=spec.func == "min")
        if result in (ColumnType.STRING, ColumnType.JSONB):
            return _MinMaxObjSlot(is_min=spec.func == "min")
        return None
    return None


class GroupByKernel:
    """Vectorized generic GROUP BY (composite / string keys).

    Group ids are assigned by first appearance — the per-batch distinct
    combined codes are visited in first-occurrence row order and probed
    against a persistent dict of decoded key tuples, so the group
    enumeration order matches the serial dict exactly.  ``update``
    either commits a whole batch or declines it untouched; ``spill``
    converts the accumulated state to the classic per-tuple
    ``{key_tuple: state_list}`` dict so the caller can continue on the
    reference path (or finish through the unchanged ``_finish``).
    """

    def __init__(self, aggregates: Sequence):
        self.aggregates = list(aggregates)
        self.groups: Dict[tuple, int] = {}
        self.key_tuples: List[tuple] = []
        self._slots = [_make_slot(spec) for spec in self.aggregates]
        self.supported = all(slot is not None for slot in self._slots)

    def update(self, key_vectors: Sequence[ColumnVector],
               agg_vectors: Sequence[Optional[ColumnVector]],
               length: int) -> bool:
        """Fold one batch in; ``False`` declines it with no state
        change (the caller must run the per-tuple path instead)."""
        if not self.supported:
            return False
        if length == 0:
            return True
        factors = []
        for vector in key_vectors:
            factor = factorize(vector)
            if factor is None:
                return False
            factors.append(factor)
        plans = []
        for slot, vector in zip(self._slots, agg_vectors):
            plan = slot.prepare(vector, length)
            if plan is None:
                return False
            plans.append(plan)
        gids = self._assign_gids(factors, length)
        ngroups = len(self.key_tuples)
        for slot, plan in zip(self._slots, plans):
            slot.apply(gids, plan, ngroups)
        return True

    def _assign_gids(self, factors: List[Factorized],
                     length: int) -> np.ndarray:
        if not factors:
            if not self.key_tuples:
                self.groups[()] = 0
                self.key_tuples.append(())
            return np.zeros(length, dtype=np.int64)
        comb = combine_codes(factors)
        _uniq, first, inverse = np.unique(comb, return_index=True,
                                          return_inverse=True)
        local_gid = np.empty(len(first), dtype=np.int64)
        for j in np.argsort(first, kind="stable"):
            row = int(first[j])
            key = tuple(factor.decode(row) for factor in factors)
            gid = self.groups.get(key)
            if gid is None:
                gid = len(self.key_tuples)
                self.groups[key] = gid
                self.key_tuples.append(key)
            local_gid[j] = gid
        return local_gid[inverse]

    def spill(self) -> Dict[tuple, List]:
        groups: Dict[tuple, List] = {}
        for gid, key in enumerate(self.key_tuples):
            groups[key] = [slot.state_for(gid) for slot in self._slots]
        return groups


# ----------------------------------------------------------------------
# JOIN


class JoinCodeIndex:
    """Vectorized build-side index for composite / string-key joins.

    Build keys are factorized and folded into sorted combined codes;
    probing encodes each probe column against the build dictionaries
    with ``searchsorted`` and expands matches array-at-a-time.  Stable
    argsort keeps equal-key build rows in insertion order, so matches
    stream out exactly like the per-tuple hash table's lists.
    """

    __slots__ = ("_factors", "_sorted_combs", "_sorted_positions")

    @classmethod
    def build(cls, vectors: Sequence[ColumnVector]) \
            -> Optional["JoinCodeIndex"]:
        factors = []
        radix = 1
        for vector in vectors:
            factor = factorize(vector)
            if factor is None:
                return None
            factors.append(factor)
            radix *= factor.width
            if radix >= _INT64_BOUND:
                return None  # keep build/probe folds aligned: no densify
        length = len(vectors[0])
        valid = np.ones(length, dtype=bool)
        for vector in vectors:
            valid &= ~vector.null_mask  # NULL keys never match
        comb = factors[0].codes.copy()
        for factor in factors[1:]:
            comb = comb * factor.width + factor.codes
        positions = np.flatnonzero(valid)
        combs = comb[positions]
        order = np.argsort(combs, kind="stable")
        index = cls()
        index._factors = factors
        index._sorted_combs = combs[order]
        index._sorted_positions = positions[order]
        return index

    def probe(self, vectors: Sequence[ColumnVector]):
        """``(probe_idx, build_idx, counts)`` for one probe batch, or
        ``None`` when the batch cannot be encoded (dtype mismatch,
        incomparable objects) and the per-tuple probe must run."""
        length = len(vectors[0])
        comb = np.zeros(length, dtype=np.int64)
        miss = np.zeros(length, dtype=bool)
        for factor, vector in zip(self._factors, vectors):
            encoded = _encode_against(factor, vector)
            if encoded is None:
                return None
            codes, bad = encoded
            miss |= bad
            comb = comb * factor.width + np.where(bad, 0, codes)
        left = np.searchsorted(self._sorted_combs, comb, side="left")
        right = np.searchsorted(self._sorted_combs, comb, side="right")
        counts = (right - left).astype(np.int64)
        counts[miss] = 0
        left = np.where(miss, 0, left)
        probe_idx, build_idx = expand_matches(self._sorted_positions,
                                              left, counts)
        return probe_idx, build_idx, counts


def _encode_against(factor: Factorized, vector: ColumnVector):
    """Map probe values into *factor*'s build code space; unmatched or
    NULL rows are flagged.  ``None`` declines the batch."""
    data, mask = vector.data, vector.null_mask
    uniques = factor.uniques
    k = len(uniques)
    bad = mask.copy()
    if k == 0:
        return np.zeros(len(data), dtype=np.int64), \
            np.ones(len(data), dtype=bool)
    if uniques.dtype == object or data.dtype == object:
        if uniques.dtype != object or data.dtype != object:
            return None
        # values under the null mask are unspecified (often None) and
        # would poison object comparisons — overwrite with a probe-safe
        # value before the vectorized search
        clean = data.copy()
        clean[mask] = uniques[0]
        try:
            pos = np.searchsorted(uniques, clean)
            capped = np.minimum(pos, k - 1)
            hit = np.asarray(uniques[capped] == clean, dtype=bool)
        except TypeError:
            return None
    else:
        if uniques.dtype != data.dtype:
            return None  # e.g. int64 probe of a float64 build: the
            # dict compares exactly, promoted floats may not
        pos = np.searchsorted(uniques, data)
        capped = np.minimum(pos, k - 1)
        with np.errstate(invalid="ignore"):
            hit = uniques[capped] == data
    bad |= ~hit
    return capped.astype(np.int64), bad


def expand_matches(sorted_positions: np.ndarray, left: np.ndarray,
                   counts: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Expand per-probe match ranges over a sorted-key index into
    ``(probe_idx, build_idx)`` pairs (shared with the single-int join
    fast path's layout: probe order outer, build order inner)."""
    total = int(counts.sum())
    probe_idx = np.repeat(np.arange(len(counts), dtype=np.int64), counts)
    starts = np.repeat(left, counts)
    cum = np.cumsum(counts)
    within = np.arange(total, dtype=np.int64) - np.repeat(cum - counts,
                                                          counts)
    build_idx = sorted_positions[starts + within]
    return probe_idx, build_idx


# ----------------------------------------------------------------------
# ORDER BY


def lexsort_indices(batch, keys) -> Optional[np.ndarray]:
    """Null-aware ``np.lexsort`` row order for ``ORDER BY`` *keys*, or
    ``None`` when a key cannot be factorized (NaN, mixed types) and
    the Python comparator must run.

    Per key, rows map to dense rank codes with NULLs at rank ``k`` —
    past every value in either direction, reproducing the comparator's
    "NULLs always sort last" contract; descending keys flip the value
    ranks to ``(k-1) - code`` while NULLs stay at ``k``.  ``lexsort``
    is stable, so ties fall back to input order exactly like the
    stable per-row sort.
    """
    arrays = []
    for sort_key in keys:
        factor = factorize(batch.column(sort_key.name))
        if factor is None:
            return None
        k = len(factor.values)
        codes = factor.codes
        if sort_key.descending:
            codes = np.where(codes == k, k, (k - 1) - codes)
        arrays.append(codes)
    if not arrays:
        return np.arange(batch.length, dtype=np.int64)
    return np.lexsort(arrays[::-1]).astype(np.int64)


# ----------------------------------------------------------------------
# scalar reductions (the no-GROUP-BY aggregate path)


def masked_sum(data: np.ndarray, valid: np.ndarray) -> object:
    """Sum of ``data[valid]`` without materializing a Python list.

    int64 inputs use the native reduction while a conservative bound
    proves no intermediate can wrap, then fall back to an object-dtype
    reduce (exact arbitrary-precision Python ints).  Object inputs
    reduce directly — ``np.add.reduce`` folds left-to-right, replaying
    ``sum()``'s sequence."""
    vals = data[valid]
    if vals.dtype == object:
        return vals.sum()
    if vals.dtype.kind in "iub":
        if len(vals) == 0:
            return 0
        top = max(abs(int(vals.max())), abs(int(vals.min())))
        if len(vals) * top < _INT64_BOUND:
            return int(vals.sum(dtype=np.int64))
        return int(vals.astype(object).sum())
    return vals.sum().item()
