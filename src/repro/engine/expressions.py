"""Vectorized expressions with SQL three-valued logic.

Expressions evaluate over a :class:`~repro.engine.batch.Batch` and
return a :class:`~repro.storage.column.ColumnVector`.  NULL handling
follows SQL: comparisons and arithmetic propagate NULL, AND/OR use
Kleene logic, ``IS NULL`` observes it.

Every expression reports the column references for which a NULL input
forces a non-TRUE result (:meth:`Expression.null_rejected_refs`); the
optimizer uses this to derive the tile-skipping property of Section
4.8 ("null values are skipped or evaluated as false").
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.datetimes import MICROS_PER_DAY
from repro.core.types import ColumnType
from repro.engine.batch import Batch
from repro.errors import ExecutionError
from repro.storage.column import ColumnVector, dtype_for


class Expression:
    """Base class; subclasses set ``result_type`` and ``evaluate``."""

    result_type: ColumnType

    def evaluate(self, batch: Batch) -> ColumnVector:
        raise NotImplementedError

    def children(self) -> Sequence["Expression"]:
        return ()

    def null_rejected_refs(self) -> Set[str]:
        """Column names whose NULL forces this expression non-TRUE.

        Used when the expression is a predicate: if a referenced path
        cannot occur in a tile at all, every row evaluates non-TRUE and
        the tile can be skipped.
        """
        refs: Set[str] = set()
        for child in self.children():
            refs |= child.null_rejected_refs()
        return refs

    def referenced_columns(self) -> Set[str]:
        refs: Set[str] = set()
        for child in self.children():
            refs |= child.referenced_columns()
        return refs

    def __repr__(self) -> str:
        return f"{type(self).__name__}"


class Literal(Expression):
    def __init__(self, value: object, result_type: ColumnType):
        self.value = value
        self.result_type = result_type

    def evaluate(self, batch: Batch) -> ColumnVector:
        length = batch.length
        if self.value is None:
            return ColumnVector.all_null(self.result_type, length)
        data = np.full(length, self.value, dtype=dtype_for(self.result_type))
        return ColumnVector(self.result_type, data)

    def __repr__(self) -> str:
        return f"Literal({self.value!r})"


class ColumnRef(Expression):
    def __init__(self, name: str, result_type: ColumnType,
                 null_rejecting: bool = True):
        self.name = name
        self.result_type = result_type
        #: scan placeholders for JSON accesses set this so skipping can
        #: trace predicates back to key paths
        self.null_rejecting = null_rejecting

    def evaluate(self, batch: Batch) -> ColumnVector:
        return batch.column(self.name)

    def null_rejected_refs(self) -> Set[str]:
        return {self.name} if self.null_rejecting else set()

    def referenced_columns(self) -> Set[str]:
        return {self.name}

    def __repr__(self) -> str:
        return f"ColumnRef({self.name})"


def _combined_nulls(vectors: Sequence[ColumnVector]) -> np.ndarray:
    mask = vectors[0].null_mask.copy()
    for vector in vectors[1:]:
        mask |= vector.null_mask
    return mask


_NUMERIC = (ColumnType.INT64, ColumnType.FLOAT64, ColumnType.DECIMAL,
            ColumnType.TIMESTAMP)


class Comparison(Expression):
    """``=, <>, <, <=, >, >=`` with NULL propagation."""

    OPS = {"=", "<>", "<", "<=", ">", ">="}

    def __init__(self, op: str, left: Expression, right: Expression):
        if op not in self.OPS:
            raise ExecutionError(f"unknown comparison {op!r}")
        self.op = op
        self.left = left
        self.right = right
        self.result_type = ColumnType.BOOL

    def children(self) -> Sequence[Expression]:
        return (self.left, self.right)

    def evaluate(self, batch: Batch) -> ColumnVector:
        left = self.left.evaluate(batch)
        right = self.right.evaluate(batch)
        ldata, rdata = _align_numeric(left, right)
        if self.op == "=":
            data = ldata == rdata
        elif self.op == "<>":
            data = ldata != rdata
        elif self.op == "<":
            data = ldata < rdata
        elif self.op == "<=":
            data = ldata <= rdata
        elif self.op == ">":
            data = ldata > rdata
        else:
            data = ldata >= rdata
        data = np.asarray(data, dtype=bool)
        return ColumnVector(ColumnType.BOOL, data, _combined_nulls((left, right)))

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


def _align_numeric(left: ColumnVector,
                   right: ColumnVector) -> Tuple[np.ndarray, np.ndarray]:
    """Make two vectors comparable (int vs float widening; strings and
    other object arrays compare elementwise as-is, with NULL slots
    replaced by a harmless placeholder)."""
    ldata, rdata = left.data, right.data
    if left.type in _NUMERIC and right.type in _NUMERIC:
        if left.type == ColumnType.FLOAT64 or right.type == ColumnType.FLOAT64 \
                or left.type == ColumnType.DECIMAL or right.type == ColumnType.DECIMAL:
            ldata = ldata.astype(np.float64)
            rdata = rdata.astype(np.float64)
        return ldata, rdata
    if left.data.dtype == object or right.data.dtype == object:
        # NULL slots of object arrays hold None, which breaks < on the
        # payload type; substitute a comparable placeholder (the slots
        # are masked out of the verdict anyway).
        ldata = _fill_object_nulls(left, right)
        rdata = _fill_object_nulls(right, left)
        return ldata, rdata
    return ldata, rdata


def _first_non_null(vector: ColumnVector):
    slots = np.flatnonzero(~vector.null_mask)
    if len(slots):
        return vector.data[slots[0]]
    return None


def _fill_object_nulls(vector: ColumnVector,
                       other: Optional[ColumnVector] = None) -> np.ndarray:
    """Replace NULL slots of an object array with a placeholder drawn
    from the column's own values (or the other side's, when this side
    is all NULL).  An empty string is only right for string payloads —
    a decimal-as-object column needs a numeric placeholder or ``<``
    raises TypeError on the unmasked compare."""
    if vector.data.dtype != object or not vector.null_mask.any():
        return vector.data
    placeholder = _first_non_null(vector)
    if placeholder is None and other is not None:
        placeholder = _first_non_null(other)
    if placeholder is None:
        placeholder = ""
    data = vector.data.copy()
    data[vector.null_mask] = placeholder
    return data


class Arithmetic(Expression):
    OPS = {"+", "-", "*", "/"}

    def __init__(self, op: str, left: Expression, right: Expression):
        if op not in self.OPS:
            raise ExecutionError(f"unknown arithmetic operator {op!r}")
        self.op = op
        self.left = left
        self.right = right
        if op == "/":
            self.result_type = ColumnType.FLOAT64
        elif (left.result_type == ColumnType.INT64
              and right.result_type == ColumnType.INT64):
            self.result_type = ColumnType.INT64
        else:
            self.result_type = ColumnType.FLOAT64

    def children(self) -> Sequence[Expression]:
        return (self.left, self.right)

    def evaluate(self, batch: Batch) -> ColumnVector:
        left = self.left.evaluate(batch)
        right = self.right.evaluate(batch)
        nulls = _combined_nulls((left, right))
        ldata = left.data.astype(np.float64) \
            if self.result_type != ColumnType.INT64 else left.data
        rdata = right.data.astype(np.float64) \
            if self.result_type != ColumnType.INT64 else right.data
        with np.errstate(divide="ignore", invalid="ignore"):
            if self.op == "+":
                data = ldata + rdata
            elif self.op == "-":
                data = ldata - rdata
            elif self.op == "*":
                data = ldata * rdata
            else:
                data = ldata / np.where(rdata == 0, np.nan, rdata)
                nulls = nulls | (np.asarray(rdata) == 0)
        return ColumnVector(self.result_type, np.asarray(data), nulls)

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


class BoolAnd(Expression):
    """Kleene AND; null-rejected refs are the union of both sides."""

    def __init__(self, left: Expression, right: Expression):
        self.left = left
        self.right = right
        self.result_type = ColumnType.BOOL

    def children(self) -> Sequence[Expression]:
        return (self.left, self.right)

    def evaluate(self, batch: Batch) -> ColumnVector:
        left = self.left.evaluate(batch)
        right = self.right.evaluate(batch)
        ltrue = left.data & ~left.null_mask
        rtrue = right.data & ~right.null_mask
        lfalse = ~left.data & ~left.null_mask
        rfalse = ~right.data & ~right.null_mask
        data = ltrue & rtrue
        nulls = ~(data | lfalse | rfalse)
        return ColumnVector(ColumnType.BOOL, data, nulls)


class BoolOr(Expression):
    """Kleene OR; only refs rejected by *both* sides stay rejected."""

    def __init__(self, left: Expression, right: Expression):
        self.left = left
        self.right = right
        self.result_type = ColumnType.BOOL

    def children(self) -> Sequence[Expression]:
        return (self.left, self.right)

    def null_rejected_refs(self) -> Set[str]:
        return self.left.null_rejected_refs() & self.right.null_rejected_refs()

    def evaluate(self, batch: Batch) -> ColumnVector:
        left = self.left.evaluate(batch)
        right = self.right.evaluate(batch)
        ltrue = left.data & ~left.null_mask
        rtrue = right.data & ~right.null_mask
        lfalse = ~left.data & ~left.null_mask
        rfalse = ~right.data & ~right.null_mask
        data = ltrue | rtrue
        nulls = ~(data | (lfalse & rfalse))
        return ColumnVector(ColumnType.BOOL, data, nulls)


class Not(Expression):
    def __init__(self, operand: Expression):
        self.operand = operand
        self.result_type = ColumnType.BOOL

    def children(self) -> Sequence[Expression]:
        return (self.operand,)

    def evaluate(self, batch: Batch) -> ColumnVector:
        value = self.operand.evaluate(batch)
        return ColumnVector(ColumnType.BOOL, ~value.data.astype(bool),
                            value.null_mask.copy())


class IsNull(Expression):
    """``IS NULL`` / ``IS NOT NULL``; never NULL itself and never
    null-rejecting (a NULL input produces TRUE for IS NULL)."""

    def __init__(self, operand: Expression, negated: bool = False):
        self.operand = operand
        self.negated = negated
        self.result_type = ColumnType.BOOL

    def children(self) -> Sequence[Expression]:
        return (self.operand,)

    def null_rejected_refs(self) -> Set[str]:
        if self.negated:
            # IS NOT NULL is false on NULL: it rejects
            return self.operand.null_rejected_refs()
        return set()

    def evaluate(self, batch: Batch) -> ColumnVector:
        value = self.operand.evaluate(batch)
        data = value.null_mask.copy()
        if self.negated:
            data = ~data
        return ColumnVector(ColumnType.BOOL, data,
                            np.zeros(batch.length, dtype=bool))


class InList(Expression):
    def __init__(self, operand: Expression, values: Sequence[object],
                 negated: bool = False):
        self.operand = operand
        self.values = list(values)
        self.negated = negated
        self.result_type = ColumnType.BOOL

    def children(self) -> Sequence[Expression]:
        return (self.operand,)

    def evaluate(self, batch: Batch) -> ColumnVector:
        value = self.operand.evaluate(batch)
        nulls = value.null_mask
        if value.data.dtype == object:
            members = set(self.values)
            if nulls.any():
                # membership-test only the non-null slots; NULL slots
                # are masked out of the verdict regardless
                data = np.zeros(len(value.data), dtype=bool)
                slots = np.flatnonzero(~nulls)
                data[slots] = np.fromiter(
                    (item in members for item in value.data[slots]),
                    dtype=bool, count=len(slots))
            else:
                data = np.fromiter((item in members for item in value.data),
                                   dtype=bool, count=len(value.data))
        else:
            data = np.isin(value.data, np.array(self.values))
        if self.negated:
            data = ~data
        return ColumnVector(ColumnType.BOOL, data, nulls)


class Like(Expression):
    """SQL LIKE with ``%`` and ``_`` wildcards."""

    def __init__(self, operand: Expression, pattern: str, negated: bool = False):
        self.operand = operand
        self.pattern = pattern
        self.negated = negated
        self.result_type = ColumnType.BOOL
        regex = re.escape(pattern).replace("%", ".*").replace("_", ".")
        self._regex = re.compile(regex + r"\Z", re.DOTALL)

    def children(self) -> Sequence[Expression]:
        return (self.operand,)

    def evaluate(self, batch: Batch) -> ColumnVector:
        value = self.operand.evaluate(batch)
        match = self._regex.match
        nulls = value.null_mask
        if nulls.any():
            # match only the non-null slots; NULL slots are masked out
            # of the verdict regardless
            data = np.zeros(len(value.data), dtype=bool)
            slots = np.flatnonzero(~nulls)
            data[slots] = np.fromiter(
                (bool(match(item)) if isinstance(item, str) else False
                 for item in value.data[slots]),
                dtype=bool, count=len(slots))
        else:
            data = np.fromiter(
                (bool(match(item)) if isinstance(item, str) else False
                 for item in value.data),
                dtype=bool, count=len(value.data),
            )
        if self.negated:
            data = ~data
        return ColumnVector(ColumnType.BOOL, data, nulls)


class Case(Expression):
    """``CASE WHEN cond THEN value ... [ELSE value] END``."""

    def __init__(self, branches: Sequence[Tuple[Expression, Expression]],
                 default: Optional[Expression], result_type: ColumnType):
        self.branches = list(branches)
        self.default = default
        self.result_type = result_type

    def children(self) -> Sequence[Expression]:
        out: List[Expression] = []
        for cond, value in self.branches:
            out.extend((cond, value))
        if self.default is not None:
            out.append(self.default)
        return out

    def null_rejected_refs(self) -> Set[str]:
        return set()  # CASE can turn NULL inputs into non-NULL outputs

    def evaluate(self, batch: Batch) -> ColumnVector:
        length = batch.length
        data = np.zeros(length, dtype=dtype_for(self.result_type))
        nulls = np.ones(length, dtype=bool)
        undecided = np.ones(length, dtype=bool)
        for cond, value in self.branches:
            cond_vec = cond.evaluate(batch)
            hit = undecided & cond_vec.data.astype(bool) & ~cond_vec.null_mask
            if hit.any():
                value_vec = value.evaluate(batch)
                data[hit] = value_vec.data[hit]
                nulls[hit] = value_vec.null_mask[hit]
            undecided &= ~hit
        if self.default is not None and undecided.any():
            value_vec = self.default.evaluate(batch)
            data[undecided] = value_vec.data[undecided]
            nulls[undecided] = value_vec.null_mask[undecided]
        return ColumnVector(self.result_type, data, nulls)


class ExtractYear(Expression):
    """``extract(year from timestamp_expr)`` — vectorized."""

    def __init__(self, operand: Expression):
        self.operand = operand
        self.result_type = ColumnType.INT64

    def children(self) -> Sequence[Expression]:
        return (self.operand,)

    def evaluate(self, batch: Batch) -> ColumnVector:
        value = self.operand.evaluate(batch)
        micros = value.data.astype("int64")
        years = micros.astype("datetime64[us]").astype("datetime64[Y]")
        data = years.astype(np.int64) + 1970
        return ColumnVector(ColumnType.INT64, data, value.null_mask.copy())


class Substring(Expression):
    """``substring(x from start for length)`` (1-based, SQL style)."""

    def __init__(self, operand: Expression, start: int, length: int):
        self.operand = operand
        self.start = start
        self.length = length
        self.result_type = ColumnType.STRING

    def children(self) -> Sequence[Expression]:
        return (self.operand,)

    def evaluate(self, batch: Batch) -> ColumnVector:
        value = self.operand.evaluate(batch)
        lo = self.start - 1
        hi = lo + self.length
        data = np.array(
            [item[lo:hi] if isinstance(item, str) else None
             for item in value.data],
            dtype=object,
        )
        return ColumnVector(ColumnType.STRING, data, value.null_mask.copy())


class Cast(Expression):
    """Runtime cast between engine types (the cheap kind that survives
    cast rewriting, e.g. INT64 column accessed as Float, Section 4.3)."""

    def __init__(self, operand: Expression, target: ColumnType):
        self.operand = operand
        self.result_type = target

    def children(self) -> Sequence[Expression]:
        return (self.operand,)

    def evaluate(self, batch: Batch) -> ColumnVector:
        value = self.operand.evaluate(batch)
        if value.type == self.result_type:
            return value
        target = self.result_type
        nulls = value.null_mask.copy()
        if target in (ColumnType.FLOAT64, ColumnType.DECIMAL):
            if value.data.dtype == object:
                out, extra_nulls = _object_to_float(value.data)
                return ColumnVector(target, out, nulls | extra_nulls)
            return ColumnVector(target, value.data.astype(np.float64), nulls)
        if target == ColumnType.INT64:
            if value.data.dtype == object:
                out, extra_nulls = _object_to_int(value.data)
                return ColumnVector(target, out, nulls | extra_nulls)
            data = value.data
            if data.dtype == np.float64:
                # out-of-range floats become NULL rather than wrapping
                bad = ~np.isfinite(data) | (data >= 2.0**63) | \
                    (data < -(2.0**63))
                safe = np.where(bad, 0.0, data)
                return ColumnVector(target, safe.astype(np.int64),
                                    nulls | bad)
            return ColumnVector(target, data.astype(np.int64), nulls)
        if target == ColumnType.STRING:
            data = np.array([_to_text(item) for item in value.data.tolist()],
                            dtype=object)
            return ColumnVector(target, data, nulls)
        if target == ColumnType.BOOL:
            return ColumnVector(target, value.data.astype(bool), nulls)
        if target == ColumnType.TIMESTAMP:
            from repro.core.datetimes import parse_datetime_string
            out = np.zeros(len(value.data), dtype=np.int64)
            extra = np.zeros(len(value.data), dtype=bool)
            for index, item in enumerate(value.data):
                if isinstance(item, str):
                    parsed = parse_datetime_string(item)
                    if parsed is None:
                        extra[index] = True
                    else:
                        out[index] = parsed
                elif isinstance(item, (int, np.integer)):
                    out[index] = int(item)
                else:
                    extra[index] = True
            return ColumnVector(target, out, nulls | extra)
        raise ExecutionError(f"unsupported cast to {target}")


def _object_to_float(data: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    out = np.zeros(len(data), dtype=np.float64)
    nulls = np.zeros(len(data), dtype=bool)
    for index, item in enumerate(data):
        try:
            out[index] = float(item)
        except (TypeError, ValueError):
            nulls[index] = True
    return out, nulls


def _object_to_int(data: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    out = np.zeros(len(data), dtype=np.int64)
    nulls = np.zeros(len(data), dtype=bool)
    for index, item in enumerate(data):
        try:
            out[index] = int(item)
        except (TypeError, ValueError, OverflowError):
            try:
                out[index] = int(float(item))
            except (TypeError, ValueError, OverflowError):
                nulls[index] = True
    return out, nulls


def _to_text(item: object) -> Optional[str]:
    if item is None:
        return None
    if isinstance(item, bool):
        return "true" if item else "false"
    if isinstance(item, float) and item == int(item):
        return str(int(item))
    return str(item)


def interval_micros(amount: int, unit: str) -> int:
    """``INTERVAL 'amount' unit`` in epoch microseconds (day-based units
    only; month/year intervals are folded at bind time)."""
    unit = unit.lower().rstrip("s")
    scale = {"day": MICROS_PER_DAY, "hour": MICROS_PER_DAY // 24,
             "minute": 60_000_000, "second": 1_000_000}
    if unit not in scale:
        raise ExecutionError(f"unsupported interval unit {unit!r}")
    return amount * scale[unit]
