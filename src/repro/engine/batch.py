"""Column batches: the unit of data flow between operators.

The engine is vectorized: every operator consumes and produces batches
of named :class:`~repro.storage.column.ColumnVector` columns.  One scan
batch corresponds to one tile, so extracted columns flow straight from
the tile storage into expression evaluation without per-tuple work.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

import numpy as np

from repro.errors import ExecutionError
from repro.storage.column import ColumnVector


class Batch:
    """A fixed-length collection of named column vectors."""

    __slots__ = ("columns", "length")

    def __init__(self, columns: Dict[str, ColumnVector], length: int):
        for name, column in columns.items():
            if len(column) != length:
                raise ExecutionError(
                    f"column {name!r} has {len(column)} rows, batch has {length}"
                )
        self.columns = columns
        self.length = length

    def column(self, name: str) -> ColumnVector:
        try:
            return self.columns[name]
        except KeyError:
            raise ExecutionError(f"unknown column {name!r} in batch "
                                 f"(have {sorted(self.columns)})") from None

    def filter(self, keep: np.ndarray) -> "Batch":
        kept = {name: column.filter(keep) for name, column in self.columns.items()}
        return Batch(kept, int(np.count_nonzero(keep)))

    def take(self, indices: np.ndarray) -> "Batch":
        taken = {name: column.take(indices) for name, column in self.columns.items()}
        return Batch(taken, len(indices))

    def with_columns(self, extra: Dict[str, ColumnVector]) -> "Batch":
        merged = dict(self.columns)
        merged.update(extra)
        return Batch(merged, self.length)

    def __len__(self) -> int:
        return self.length


def concat_batches(batches: List[Batch]) -> Optional[Batch]:
    """Concatenate batches with identical schemas (None when empty)."""
    batches = [batch for batch in batches if batch.length > 0]
    if not batches:
        return None
    if len(batches) == 1:
        return batches[0]
    names = list(batches[0].columns)
    columns = {}
    for name in names:
        vectors = [batch.column(name) for batch in batches]
        data = np.concatenate([vector.data for vector in vectors])
        null_mask = np.concatenate([vector.null_mask for vector in vectors])
        columns[name] = ColumnVector(vectors[0].type, data, null_mask)
    return Batch(columns, sum(batch.length for batch in batches))
