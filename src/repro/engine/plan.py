"""Logical query blocks — the binder's output, the optimizer's input.

A :class:`QueryBlock` is a single SELECT after normalization: a set of
*sources* (base-table scans with pushed-down access requests, or
derived sub-blocks), WHERE conjuncts, decorrelated semi/anti-join
filters, left joins, grouping, aggregation and presentation clauses.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.core.jsonpath import KeyPath
from repro.core.types import ColumnType
from repro.engine.expressions import ColumnRef, Expression
from repro.engine.morsels import default_parallelism as _default_parallelism
from repro.engine.operators import AggregateSpec, JoinKind, SortKey
from repro.engine.scan import AccessRequest
from repro.storage.relation import Relation


def _default_tile_cache() -> bool:
    return os.environ.get("REPRO_TILE_CACHE", "").lower() in (
        "1", "true", "yes", "on")


def _default_multipath_shred() -> bool:
    """On unless ``REPRO_MULTIPATH_SHRED`` disables it (benchmarks
    ablate the single-pass shredder against per-path traversal)."""
    raw = os.environ.get("REPRO_MULTIPATH_SHRED", "")
    if not raw:
        return True
    return raw.lower() in ("1", "true", "yes", "on")


def _default_kernels() -> bool:
    """On unless ``REPRO_KERNELS`` disables it (differential tests and
    benchmarks ablate the batch kernels against the per-tuple paths)."""
    raw = os.environ.get("REPRO_KERNELS", "")
    if not raw:
        return True
    return raw.lower() in ("1", "true", "yes", "on")


def _default_latemat() -> bool:
    """On unless ``REPRO_LATEMAT`` disables it (differential tests
    ablate the selection-vector scan against eager materialization)."""
    raw = os.environ.get("REPRO_LATEMAT", "")
    if not raw:
        return True
    return raw.lower() in ("1", "true", "yes", "on")


def _default_fragments() -> bool:
    """On unless ``REPRO_FRAGMENTS`` disables it (differential tests
    ablate the fragment executor against the fused operator tree)."""
    raw = os.environ.get("REPRO_FRAGMENTS", "")
    if not raw:
        return True
    return raw.lower() in ("1", "true", "yes", "on")


def _default_distjoin() -> bool:
    """On unless ``REPRO_DISTJOIN`` disables it (the coordinator then
    answers every join through the gather fallback)."""
    raw = os.environ.get("REPRO_DISTJOIN", "")
    if not raw:
        return True
    return raw.lower() in ("1", "true", "yes", "on")


def alias_of_column(name: str) -> str:
    """Recover the source alias from a column name.

    Scan placeholders are ``alias$path::TYPE$mode``; derived-table
    outputs are ``alias.column``.
    """
    dollar = name.find("$")
    dot = name.find(".")
    if dollar != -1 and (dot == -1 or dollar < dot):
        return name[:dollar]
    if dot != -1:
        return name[:dot]
    return name


@dataclass
class ScanSource:
    """A base-table scan with its pushed-down access requests."""

    alias: str
    relation: Relation
    requests: Dict[str, AccessRequest] = field(default_factory=dict)
    filters: List[Expression] = field(default_factory=list)

    def request(self, path: KeyPath, target: ColumnType,
                as_text: bool) -> ColumnRef:
        """Register (or reuse) an access request; returns the
        placeholder column reference (Section 4.2's placeholders)."""
        request = AccessRequest.make(self.alias, path, target, as_text)
        self.requests.setdefault(request.name, request)
        result_type = (ColumnType.FLOAT64 if target == ColumnType.DECIMAL
                       else target)
        return ColumnRef(request.name, result_type)

    def request_paths(self) -> Dict[str, KeyPath]:
        return {name: request.path for name, request in self.requests.items()}


@dataclass
class DerivedSource:
    """A derived table: a nested block exposing named output columns."""

    alias: str
    block: "QueryBlock"
    #: exposed name ("alias.column") -> type
    output_types: Dict[str, ColumnType] = field(default_factory=dict)
    filters: List[Expression] = field(default_factory=list)


Source = Union[ScanSource, DerivedSource]


@dataclass
class SubqueryFilter:
    """A decorrelated EXISTS / IN: semi or anti join against a block.

    ``raw=True`` (EXISTS) joins against the block's un-projected join
    tree so correlated residuals can reference any inner placeholder;
    ``raw=False`` (IN) joins against the block's projected output.
    """

    kind: JoinKind  # SEMI or ANTI
    block: "QueryBlock"
    outer_keys: List[Expression]
    inner_keys: List[Expression]
    residual: Optional[Expression] = None
    raw: bool = True


@dataclass
class LeftJoinSpec:
    source: Source
    #: (outer expression, inner expression) equi conditions
    keys: List[Tuple[Expression, Expression]]
    residual: Optional[Expression] = None


@dataclass
class QueryBlock:
    sources: List[Source] = field(default_factory=list)
    predicates: List[Expression] = field(default_factory=list)
    subquery_filters: List[SubqueryFilter] = field(default_factory=list)
    left_joins: List[LeftJoinSpec] = field(default_factory=list)
    group_keys: List[Tuple[str, Expression]] = field(default_factory=list)
    aggregates: List[AggregateSpec] = field(default_factory=list)
    having: Optional[Expression] = None
    select: List[Tuple[str, Expression]] = field(default_factory=list)
    order_by: List[SortKey] = field(default_factory=list)
    limit: Optional[int] = None
    #: UNION ALL branches; ORDER BY / LIMIT above apply to the
    #: concatenation, column names come from this (the first) block
    union_blocks: List["QueryBlock"] = field(default_factory=list)

    @property
    def is_aggregated(self) -> bool:
        return bool(self.group_keys or self.aggregates)

    def source(self, alias: str) -> Source:
        for source in self.sources:
            if source.alias == alias:
                return source
        raise KeyError(alias)

    def output_names(self) -> List[str]:
        return [name for name, _ in self.select]


@dataclass
class QueryOptions:
    """Execution/optimization switches (the Figure 14 / 15 ablations)."""

    enable_skipping: bool = True
    use_statistics: bool = True
    enable_cast_rewriting: bool = True
    batch_rows: int = 4096
    #: Section 4.6: sample documents statically at plan time to refine
    #: scan selectivities (creates estimates where no sketch exists).
    enable_sampling: bool = False
    sample_size: int = 128
    #: per-tile min/max zone maps prune tiles whose value range cannot
    #: satisfy a pushed comparison (Data Blocks-style extension of
    #: Section 4.8 skipping).
    enable_zone_maps: bool = True
    #: morsel-driven parallelism: worker threads per query (1 = the
    #: serial engine).  Results are bit-identical at any setting.
    parallelism: int = field(default_factory=_default_parallelism)
    #: share resolved fallback columns across queries through the
    #: process-wide LRU (server default; embedded opt-in).
    tile_cache: bool = field(default_factory=_default_tile_cache)
    #: resolve all of a tuple's fallback paths in one JSONB walk
    #: (Sinew/Dremel-style shredding) instead of one traversal per
    #: path; off reproduces the per-path baseline for ablation.
    enable_multipath_shred: bool = field(
        default_factory=_default_multipath_shred)
    #: batch kernels (engine/kernels.py): vectorized generic GROUP BY,
    #: composite/string-key join probe, lexsort ORDER BY.  Off runs the
    #: per-tuple reference paths; results are bit-identical either way
    #: (the differential suite asserts it).
    enable_kernels: bool = field(default_factory=_default_kernels)
    #: late materialization (DESIGN.md §9): evaluate extracted-only
    #: filter conjuncts first and decode fallback/JSONB columns only
    #: for the surviving rows; per-tile decline keeps results
    #: bit-identical to eager materialization either way.
    enable_late_materialization: bool = field(
        default_factory=_default_latemat)
    #: plan-fragment execution (DESIGN.md §10): route partial-capable
    #: blocks through the two-phase fragment IR even on a single node,
    #: where the exchange is an in-process pass-through.  Off runs the
    #: fused operator tree; results are bit-identical either way.
    enable_fragments: bool = field(default_factory=_default_fragments)
    #: shard-side broadcast joins (DESIGN.md §10): the coordinator may
    #: broadcast a small join build side to every shard and merge only
    #: partial results.  Off (or any declined plan) falls back to the
    #: gather path; results are bit-identical either way.
    enable_distributed_joins: bool = field(
        default_factory=_default_distjoin)
    #: ceiling on the estimated global build-side cardinality a
    #: broadcast join will ship; larger build sides decline to gather
    #: (the topology file may override this per cluster).
    broadcast_max_rows: int = 100_000
