"""Morsel-driven parallelism (Section 4: "tiles integrate into the
relational engine like any other scan; morsel-driven parallelism
dispatches tile-granular work to worker threads").

A *morsel* is one batch-sized slice of one tile — the unit of work a
worker thread picks up.  The module owns the process-wide worker pool
shared by every parallel operator (and by all of the server's
concurrent queries): numpy kernels release the GIL, so scan
conversion, predicate evaluation and vectorized aggregation overlap
across threads even in CPython.

Determinism contract: :func:`run_ordered` yields results in morsel
order regardless of which worker finishes first, and the merge stages
in ``operators.py`` fold partial states in that same order — parallel
execution replays the exact float-operation sequence of the serial
engine, so results are bit-identical at any worker count.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Optional, Sequence, TypeVar

T = TypeVar("T")


@dataclass(frozen=True)
class Morsel:
    """One unit of scan work: a row range of one tile.

    ``tile`` is a :class:`~repro.storage.tilestore.TileHandle`; the
    worker that resolves the morsel pins it for the duration, so a
    paged-out payload is faulted in at most once per morsel and can't
    be evicted mid-resolution.  ``tile`` is ``None`` for the raw-text
    storage format, where the range indexes the relation's text rows
    instead.

    Morsels are enumerated from an epoch-stamped level manifest
    (``relation.manifest()``, DESIGN.md §8), so the handle may belong
    to a tile set an LSM compaction has since superseded; the handle
    stays resolvable for the scan that enumerated it (ordinary
    reference semantics plus the pin protocol), and the append guard
    keeps swaps out of read critical sections.
    """

    index: int
    tile: Optional[object]
    start: int
    stop: int


def default_parallelism() -> int:
    """Worker count from ``REPRO_PARALLELISM`` (default: serial)."""
    raw = os.environ.get("REPRO_PARALLELISM", "")
    try:
        return max(1, int(raw))
    except ValueError:
        return 1


# ----------------------------------------------------------------------
# the shared worker pool

_pool_lock = threading.Lock()
_pool: Optional[ThreadPoolExecutor] = None
_pool_size = 0

_stats_lock = threading.Lock()
_tasks_submitted = 0
_tasks_completed = 0
_tasks_active = 0
_busy_seconds = 0.0


def get_pool(workers: int) -> ThreadPoolExecutor:
    """The shared morsel pool, grown to at least *workers* threads.

    One pool serves every query in the process: tasks are independent
    (no task ever submits to the pool itself), so sharing cannot
    deadlock — it only queues.  The server keeps its per-connection
    query pool separate from this one for the same reason.
    """
    global _pool, _pool_size
    with _pool_lock:
        if _pool is None or _pool_size < workers:
            old = _pool
            _pool = ThreadPoolExecutor(
                max_workers=max(2, workers),
                thread_name_prefix="repro-morsel")
            _pool_size = max(2, workers)
            if old is not None:
                old.shutdown(wait=False)
        return _pool


def shutdown_pool() -> None:
    """Tear down the shared pool (tests / interpreter exit)."""
    global _pool, _pool_size
    with _pool_lock:
        if _pool is not None:
            _pool.shutdown(wait=True)
            _pool = None
            _pool_size = 0


def _tracked(fn: Callable[[], T]) -> T:
    global _tasks_completed, _tasks_active, _busy_seconds
    with _stats_lock:
        _tasks_active += 1
    started = time.perf_counter()
    try:
        return fn()
    finally:
        elapsed = time.perf_counter() - started
        with _stats_lock:
            _tasks_active -= 1
            _tasks_completed += 1
            _busy_seconds += elapsed


def pool_stats() -> dict:
    """Worker-pool utilization counters for the server's ``stats``."""
    with _stats_lock:
        return {
            "workers": _pool_size,
            "active": _tasks_active,
            "tasks_submitted": _tasks_submitted,
            "tasks_completed": _tasks_completed,
            "busy_seconds": round(_busy_seconds, 6),
        }


def run_ordered(fns: Sequence[Callable[[], T]], workers: int,
                window: Optional[int] = None) -> Iterator[T]:
    """Run *fns* on the shared pool, yielding results in input order.

    A bounded submission window (default ``2 * workers``) keeps memory
    flat on large scans: at most ``window`` morsels are in flight or
    buffered ahead of the consumer.  With ``workers <= 1`` the tasks
    run inline — the serial engine, untouched.
    """
    global _tasks_submitted
    fns = list(fns)
    if workers <= 1 or len(fns) <= 1:
        for fn in fns:
            yield fn()
        return
    pool = get_pool(workers)
    limit = window or max(2, 2 * workers)
    pending: deque = deque()
    index = 0
    try:
        while pending or index < len(fns):
            while index < len(fns) and len(pending) < limit:
                with _stats_lock:
                    _tasks_submitted += 1
                pending.append(pool.submit(_tracked, fns[index]))
                index += 1
            yield pending.popleft().result()
    finally:
        for future in pending:
            future.cancel()


def map_ordered(fn: Callable[..., T], items: Iterable,
                workers: int) -> list:
    """Eager ordered map over the shared pool (small fan-outs)."""
    thunks = [(lambda item=item: fn(item)) for item in items]
    return list(run_ordered(thunks, workers))


class LocalExchange:
    """The in-process degenerate case of a fragment exchange
    (DESIGN.md §10).

    On a cluster, an exchange edge moves pieces over the JSON-lines
    protocol — shard partials gathered to the coordinator, or a build
    side broadcast to every shard.  On a single node the same edge is
    this: a list the producing fragment appends to and the consuming
    fragment reads back, in the exact order the cluster's ``(block,
    chunk)`` merge would impose anyway.  Keeping the pass-through
    explicit (rather than wiring fragments directly together) is what
    lets ``engine/fragments.py`` and ``cluster/coordinator.py`` execute
    the *same* fragment DAG with only the transport swapped.
    """

    def __init__(self, kind: str):
        #: "partials" | "broadcast" | "result" — mirrors
        #: :class:`~repro.engine.fragments.PlanFragment.exchange`
        self.kind = kind
        self._pieces: list = []

    def send(self, pieces: Iterable) -> None:
        self._pieces.extend(pieces)

    def receive(self) -> list:
        return list(self._pieces)


def canonical_chop(batch_rows: int, tile_size: int) -> int:
    """The canonical scan block: tiles are chopped at multiples of
    ``min(batch_rows, tile_size)`` rows, not at their physical row
    counts.  Legacy tiles never exceed ``tile_size`` rows, so nothing
    changes for them — but an LSM-merged tile (fanout × tile_size
    rows) is sliced exactly where its inputs' boundaries were, which
    keeps per-batch float folds bit-exact with compaction on or off.
    The per-block zone maps (DESIGN.md §9) are defined over the same
    chop, so ``TableScan.morsels`` and the cluster's
    ``partial._chunk_spans`` prune identical row ranges."""
    return max(1, min(batch_rows, tile_size))


def block_ranges(total: int, block: int) -> Iterator[tuple]:
    """Aligned ``[start, stop)`` ranges of size *block* covering
    ``range(total)`` (the last range may be short).

    This is the unit the cluster's process-external partial merge is
    defined over (``repro.engine.partial``): slicing a shard's local
    rows at multiples of the tile size — independent of where the
    shard's actual tile boundaries drifted to — reproduces the batch
    boundaries a canonical single-node load would have used, which is
    what makes cross-process partial-aggregate merges bit-identical.
    """
    if block <= 0:
        raise ValueError(f"block size must be positive, got {block}")
    for start in range(0, total, block):
        yield start, min(start + block, total)
