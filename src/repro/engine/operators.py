"""Physical operators of the vectorized engine.

All operators pull batches from their children.  Joins and aggregation
use numpy fast paths for single int64 keys (the common case once JSON
accesses are pushed down and cast-rewritten) and fall back to generic
hashing for composite or string keys.

Morsel-driven parallelism: aggregation and top-k recognize when their
child pipeline bottoms out at a :class:`~repro.engine.scan.TableScan`
(through filters/projections) and, when the scan is configured with
``parallelism > 1``, dispatch tile morsels to the shared worker pool.
Each worker runs scan → predicate → partial state on its morsel; the
merge stage folds partials **in morsel order**, replaying the serial
engine's exact float-operation sequence so results stay bit-identical
at any worker count.
"""

from __future__ import annotations

import enum
import heapq
from dataclasses import dataclass
from functools import partial as _bind
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.types import ColumnType
from repro.engine.batch import Batch, concat_batches
from repro.engine.expressions import Expression
from repro.engine.kernels import (GroupByKernel, JoinCodeIndex,
                                  lexsort_indices, masked_sum)
from repro.engine.morsels import run_ordered
from repro.engine.scan import ScanCounters
from repro.errors import ExecutionError
from repro.storage.column import ColumnVector


class Operator:
    def batches(self) -> Iterator[Batch]:
        raise NotImplementedError

    def materialize(self) -> Optional[Batch]:
        return concat_batches(list(self.batches()))


class BatchSource(Operator):
    """Wrap pre-computed batches (used by subplans and tests)."""

    def __init__(self, batches: Sequence[Batch]):
        self._batches = list(batches)

    def batches(self) -> Iterator[Batch]:
        return iter(self._batches)


class FilterOp(Operator):
    def __init__(self, child: Operator, predicate: Expression,
                 pre_applied: bool = False):
        self.child = child
        self.predicate = predicate
        #: the optimizer already pushed this predicate into the scan
        #: below (where the late-materialization split can use it); the
        #: operator stays in the tree as a plan-shape/EXPLAIN marker
        #: and passes batches through untouched
        self.pre_applied = pre_applied

    def batches(self) -> Iterator[Batch]:
        if self.pre_applied:
            yield from self.child.batches()
            return
        for batch in self.child.batches():
            verdict = self.predicate.evaluate(batch)
            keep = verdict.data.astype(bool) & ~verdict.null_mask
            if keep.any():
                yield batch.filter(keep) if not keep.all() else batch


class ProjectOp(Operator):
    def __init__(self, child: Operator,
                 outputs: Sequence[Tuple[str, Expression]]):
        self.child = child
        self.outputs = list(outputs)

    def batches(self) -> Iterator[Batch]:
        for batch in self.child.batches():
            columns = {name: expr.evaluate(batch)
                       for name, expr in self.outputs}
            yield Batch(columns, batch.length)


def _extract_pipeline(op):
    """Peel filters/projections off *op* down to a TableScan.

    Returns ``(scan, transforms)`` where *transforms* re-applies the
    peeled operators (scan-order) to one morsel's batch, or
    ``(None, [])`` when the tree does not bottom out at a scan — then
    the caller falls back to streaming ``child.batches()`` (which
    still parallelizes inside the scan itself).
    """
    from repro.engine.scan import TableScan

    transforms: List[Tuple[str, object]] = []
    node = op
    while True:
        if isinstance(node, TableScan):
            transforms.reverse()
            return node, transforms
        if isinstance(node, FilterOp):
            if not node.pre_applied:  # pre-applied: the scan filters
                transforms.append(("filter", node.predicate))
            node = node.child
        elif isinstance(node, ProjectOp):
            transforms.append(("project", node.outputs))
            node = node.child
        else:
            return None, []


def _apply_transforms(batch: Optional[Batch], transforms) -> Optional[Batch]:
    """Replay peeled filter/project semantics on one morsel batch;
    ``None`` means the morsel contributed no rows."""
    if batch is None or batch.length == 0:
        return None
    for kind, payload in transforms:
        if kind == "filter":
            verdict = payload.evaluate(batch)
            keep = verdict.data.astype(bool) & ~verdict.null_mask
            if not keep.any():
                return None
            if not keep.all():
                batch = batch.filter(keep)
        else:
            batch = Batch({name: expr.evaluate(batch)
                           for name, expr in payload}, batch.length)
    return batch if batch.length else None


def _parallel_source(child):
    """The (scan, transforms, morsels) triple when *child* can be
    morsel-dispatched; ``None`` keeps the serial path."""
    scan, transforms = _extract_pipeline(child)
    if scan is None or scan.parallelism <= 1:
        return None
    return scan, transforms, scan.morsels()


class JoinKind(enum.Enum):
    INNER = "inner"
    LEFT = "left"
    SEMI = "semi"
    ANTI = "anti"


class HashJoinOp(Operator):
    """Hash join; the *right* child is the build side.

    For LEFT joins the left child is the probe/outer side, so the
    optimizer must put the preserved side on the left.
    """

    def __init__(self, left: Operator, right: Operator,
                 left_keys: Sequence[Expression],
                 right_keys: Sequence[Expression],
                 kind: JoinKind = JoinKind.INNER,
                 residual: Optional[Expression] = None,
                 right_schema: Optional[Dict[str, ColumnType]] = None,
                 enable_kernels: bool = False):
        if len(left_keys) != len(right_keys) or not left_keys:
            raise ExecutionError("join needs matching, non-empty key lists")
        self.left = left
        self.right = right
        self.left_keys = list(left_keys)
        self.right_keys = list(right_keys)
        self.kind = kind
        self.residual = residual
        #: column name -> type of the build side, needed to pad NULLs
        #: for LEFT joins when the build side is empty
        self.right_schema = right_schema
        self.enable_kernels = enable_kernels
        #: kernel_rows / fallback_rows for EXPLAIN ANALYZE (merged into
        #: the query result's counters by the executor)
        self.counters = ScanCounters()

    # -- helpers ---------------------------------------------------------

    def _key_arrays(self, batch: Batch,
                    exprs: Sequence[Expression]) -> List[ColumnVector]:
        return [expr.evaluate(batch) for expr in exprs]

    def batches(self) -> Iterator[Batch]:
        build = concat_batches(list(self.right.batches()))
        if build is None and self.kind in (JoinKind.INNER, JoinKind.SEMI):
            return
        build_index = _BuildIndex(build, self.right_keys,
                                  enable_kernels=self.enable_kernels,
                                  counters=self.counters) if build else None

        for probe in self.left.batches():
            if probe.length == 0:
                continue
            if build_index is None:
                if self.kind == JoinKind.ANTI:
                    yield probe
                elif self.kind == JoinKind.LEFT:
                    yield _pad_schema_nulls(probe, self.right_schema)
                continue
            keys = self._key_arrays(probe, self.left_keys)
            probe_idx, build_idx, match_counts = build_index.lookup(keys)
            if self.kind in (JoinKind.SEMI, JoinKind.ANTI):
                if self.residual is not None and len(probe_idx):
                    # a match only counts when the residual holds on the
                    # combined row (Q21-style correlated predicates)
                    combined = _combine(probe, probe_idx,
                                        build_index.batch, build_idx)
                    verdict = self.residual.evaluate(combined)
                    ok = verdict.data.astype(bool) & ~verdict.null_mask
                    match_counts = np.zeros(probe.length, dtype=np.int64)
                    matched = np.unique(probe_idx[ok])
                    match_counts[matched] = 1
                keep = (match_counts > 0 if self.kind == JoinKind.SEMI
                        else match_counts == 0)
                if keep.any():
                    yield probe.filter(keep)
                continue
            combined = _combine(probe, probe_idx, build_index.batch, build_idx)
            if self.residual is not None and combined.length:
                verdict = self.residual.evaluate(combined)
                keep = verdict.data.astype(bool) & ~verdict.null_mask
                if self.kind == JoinKind.INNER:
                    combined = combined.filter(keep)
                else:
                    # LEFT join residual: drop failed matches, below we
                    # re-add unmatched probes
                    matched_probe = np.unique(probe_idx[keep])
                    combined = combined.filter(keep)
                    match_counts = np.zeros(probe.length, dtype=np.int64)
                    match_counts[matched_probe] = 1
            if self.kind == JoinKind.LEFT:
                unmatched = match_counts == 0
                if unmatched.any():
                    padded = _pad_right_nulls(probe.filter(unmatched),
                                              self.right_keys,
                                              build_index.batch)
                    combined = concat_batches([combined, padded]) or combined
            if combined.length:
                yield combined


class _BuildIndex:
    """Hash index over the build side of a join.

    Three layouts share one ``lookup`` contract: the original sorted
    single-int64 fast path, the :class:`~repro.engine.kernels.
    JoinCodeIndex` batch kernel for composite/string keys (gated on
    ``enable_kernels``), and the per-tuple dict — which doubles as the
    fallback whenever a kernel declines a probe batch, and as the
    differential-test oracle.
    """

    def __init__(self, batch: Batch, key_exprs: Sequence[Expression],
                 enable_kernels: bool = False,
                 counters: Optional[ScanCounters] = None):
        self.batch = batch
        self.counters = counters
        self.enable_kernels = enable_kernels
        vectors = [expr.evaluate(batch) for expr in key_exprs]
        self._vectors = vectors
        self._table: Optional[Dict[tuple, List[int]]] = None
        self._kernel: Optional[JoinCodeIndex] = None
        self._single_int = (
            len(vectors) == 1 and vectors[0].data.dtype != object
        )
        if self._single_int:
            vector = vectors[0]
            valid = ~vector.null_mask
            self._valid_positions = np.flatnonzero(valid)
            keys = vector.data[self._valid_positions]
            order = np.argsort(keys, kind="stable")
            self._sorted_keys = keys[order]
            self._sorted_positions = self._valid_positions[order]
            return
        if enable_kernels:
            self._kernel = JoinCodeIndex.build(vectors)
        if self._kernel is None:
            self._build_table()

    def prewarm(self) -> None:
        """Materialize the per-tuple dict eagerly so ``lookup`` is
        read-only afterwards.  The probe fragment of a broadcast join
        (``engine/partial.py``) shares one index across pool workers;
        without prewarming, a kernel decline (or an object-keyed probe
        of the single-int layout) would lazily build the dict from two
        threads at once."""
        if self._table is not None:
            return
        if self._single_int:
            table: Dict[tuple, List[int]] = {}
            for position, key in zip(self._sorted_positions,
                                     self._sorted_keys):
                table.setdefault((key,), []).append(int(position))
            self._table = table
        else:
            self._build_table()

    def _build_table(self) -> None:
        self._table = {}
        masks = [vector.null_mask for vector in self._vectors]
        datas = [vector.data for vector in self._vectors]
        for row in range(self.batch.length):
            if any(mask[row] for mask in masks):
                continue  # NULL keys never match
            key = tuple(data[row] for data in datas)
            self._table.setdefault(key, []).append(row)

    def lookup(self, vectors: Sequence[ColumnVector]):
        """Return (probe_idx, build_idx, per-probe match counts)."""
        length = len(vectors[0])
        if self._single_int:
            vector = vectors[0]
            keys = vector.data
            if keys.dtype == object:
                return self._lookup_generic(vectors)
            left = np.searchsorted(self._sorted_keys, keys, side="left")
            right = np.searchsorted(self._sorted_keys, keys, side="right")
            counts = (right - left).astype(np.int64)
            counts[vector.null_mask] = 0
            left = np.where(vector.null_mask, 0, left)
            total = int(counts.sum())
            probe_idx = np.repeat(np.arange(length, dtype=np.int64), counts)
            starts = np.repeat(left, counts)
            cum = np.cumsum(counts)
            within = np.arange(total, dtype=np.int64) - np.repeat(
                cum - counts, counts
            )
            build_idx = self._sorted_positions[starts + within]
            return probe_idx, build_idx, counts
        if self._kernel is not None:
            result = self._kernel.probe(vectors)
            if result is not None:
                if self.counters is not None:
                    self.counters.kernel_rows += length
                return result
        if self.enable_kernels and self.counters is not None:
            self.counters.fallback_rows += length
        return self._lookup_generic(vectors)

    def _lookup_generic(self, vectors: Sequence[ColumnVector]):
        length = len(vectors[0])
        masks = [vector.null_mask for vector in vectors]
        datas = [vector.data for vector in vectors]
        probe_idx: List[int] = []
        build_idx: List[int] = []
        counts = np.zeros(length, dtype=np.int64)
        table = self._table
        if table is None:
            if self._single_int:
                # single-int index probed with object keys
                table = {}
                for position, key in zip(self._sorted_positions,
                                         self._sorted_keys):
                    table.setdefault((key,), []).append(int(position))
                self._table = table
            else:
                # a kernel-built index hit a probe batch it could not
                # encode: materialize the classic dict lazily
                self._build_table()
                table = self._table
        for row in range(length):
            if any(mask[row] for mask in masks):
                continue
            key = tuple(data[row] for data in datas)
            rows = table.get(key)
            if rows:
                counts[row] = len(rows)
                probe_idx.extend([row] * len(rows))
                build_idx.extend(rows)
        return (np.array(probe_idx, dtype=np.int64),
                np.array(build_idx, dtype=np.int64), counts)


def _combine(probe: Batch, probe_idx: np.ndarray,
             build: Batch, build_idx: np.ndarray) -> Batch:
    columns: Dict[str, ColumnVector] = {}
    for name, column in probe.columns.items():
        columns[name] = column.take(probe_idx)
    for name, column in build.columns.items():
        if name in columns:
            raise ExecutionError(f"duplicate column {name!r} across join")
        columns[name] = column.take(build_idx)
    return Batch(columns, len(probe_idx))


def _pad_right_nulls(probe: Batch, right_keys, build: Optional[Batch]) -> Batch:
    columns = dict(probe.columns)
    if build is not None:
        for name, column in build.columns.items():
            columns[name] = ColumnVector.all_null(column.type, probe.length)
    return Batch(columns, probe.length)


def _pad_schema_nulls(probe: Batch,
                      schema: Optional[Dict[str, ColumnType]]) -> Batch:
    columns = dict(probe.columns)
    for name, column_type in (schema or {}).items():
        columns[name] = ColumnVector.all_null(column_type, probe.length)
    return Batch(columns, probe.length)


@dataclass
class AggregateSpec:
    """One aggregate: func in {sum,count,count_star,count_distinct,avg,
    min,max}, an input expression (None for count_star) and the output
    column name."""

    func: str
    expr: Optional[Expression]
    name: str

    def output_type(self) -> ColumnType:
        if self.func in ("count", "count_star", "count_distinct"):
            return ColumnType.INT64
        if self.func == "avg":
            return ColumnType.FLOAT64
        assert self.expr is not None
        if self.func == "sum" and self.expr.result_type == ColumnType.DECIMAL:
            return ColumnType.FLOAT64
        return self.expr.result_type


class HashAggregateOp(Operator):
    """Hash aggregation (group-by); with no keys, one global group."""

    def __init__(self, child: Operator,
                 keys: Sequence[Tuple[str, Expression]],
                 aggregates: Sequence[AggregateSpec],
                 enable_kernels: bool = False):
        self.child = child
        self.keys = list(keys)
        self.aggregates = list(aggregates)
        self.enable_kernels = enable_kernels
        #: kernel_rows / fallback_rows for EXPLAIN ANALYZE (merged into
        #: the query result's counters by the executor)
        self.counters = ScanCounters()

    def batches(self) -> Iterator[Batch]:
        if not self.keys:
            yield self._scalar_aggregate()
            return
        if len(self.keys) == 1 and self._vectorizable_aggs():
            yield self._single_key_aggregate()
            return
        # generic path (composite/string keys, count_distinct per
        # group): per-row float accumulation is order-sensitive, so the
        # coordinator aggregates serially — the scan underneath still
        # produces its batches in parallel, in order.  With kernels
        # enabled, GroupByKernel folds whole batches vectorized; a
        # declined batch spills the kernel state to the classic dict
        # and the per-tuple loop continues bit-identically.
        kernel: Optional[GroupByKernel] = None
        if self.enable_kernels:
            kernel = GroupByKernel(self.aggregates)
            if not kernel.supported:
                kernel = None
        groups: Dict[tuple, List] = {}
        key_types: Optional[List[ColumnType]] = None
        for batch in self.child.batches():
            key_vectors = [expr.evaluate(batch) for _, expr in self.keys]
            if key_types is None:
                key_types = [vector.type for vector in key_vectors]
            agg_vectors = [
                spec.expr.evaluate(batch) if spec.expr is not None else None
                for spec in self.aggregates
            ]
            if kernel is not None:
                if kernel.update(key_vectors, agg_vectors, batch.length):
                    self.counters.kernel_rows += batch.length
                    continue
                groups = kernel.spill()
                kernel = None
            if self.enable_kernels:
                self.counters.fallback_rows += batch.length
            for row in range(batch.length):
                key = tuple(
                    None if vector.null_mask[row] else _scalar(vector, row)
                    for vector in key_vectors
                )
                state = groups.get(key)
                if state is None:
                    state = [_new_state(spec) for spec in self.aggregates]
                    groups[key] = state
                for slot, spec in enumerate(self.aggregates):
                    _update_state(state[slot], spec, agg_vectors[slot], row)
        if kernel is not None:
            groups = kernel.spill()
        if not groups and not self.keys:
            groups[()] = [_new_state(spec) for spec in self.aggregates]
        yield self._finish(groups, key_types)

    def _vectorizable_aggs(self) -> bool:
        supported = {"sum", "count", "count_star", "avg", "min", "max"}
        return all(
            spec.func in supported and (
                spec.expr is None or spec.expr.result_type in (
                    ColumnType.INT64, ColumnType.FLOAT64,
                    ColumnType.DECIMAL, ColumnType.TIMESTAMP))
            for spec in self.aggregates
        )

    def _single_key_aggregate(self) -> Batch:
        """Vectorized GROUP BY over one key: per batch, the key vector
        is factorized with ``np.unique`` and every aggregate update is a
        ``np.bincount`` / ``minimum.at`` reduction.

        With a morsel-dispatchable child, every worker builds a
        :class:`_SingleKeyState` for its morsel and the coordinator
        merges them in morsel order — the same per-batch partials the
        serial loop folds, in the same order, so the result is
        bit-identical to serial execution.
        """
        key_name, key_expr = self.keys[0]
        state = _SingleKeyState(key_expr, self.aggregates)
        source = _parallel_source(self.child)
        if source is not None:
            scan, transforms, morsels = source

            def task(morsel):
                batch = _apply_transforms(scan.resolve_morsel(morsel),
                                          transforms)
                if batch is None:
                    return None
                piece = _SingleKeyState(key_expr, self.aggregates)
                piece.update(batch)
                return piece

            pieces = run_ordered([_bind(task, morsel) for morsel in morsels],
                                 scan.parallelism)
            for piece in pieces:
                if piece is not None:
                    state.merge(piece)
        else:
            for batch in self.child.batches():
                state.update(batch)
        return state.finish(key_name)

    def _scalar_aggregate(self) -> Batch:
        """Vectorized global aggregation (no GROUP BY): every state
        update is a numpy reduction over the batch; morsel partials
        merge in order (see :meth:`_single_key_aggregate`)."""
        states = [_new_state(spec) for spec in self.aggregates]
        source = _parallel_source(self.child)
        if source is not None:
            scan, transforms, morsels = source

            def task(morsel):
                batch = _apply_transforms(scan.resolve_morsel(morsel),
                                          transforms)
                if batch is None:
                    return None
                piece = [_new_state(spec) for spec in self.aggregates]
                self._scalar_update(piece, batch)
                return piece

            pieces = run_ordered([_bind(task, morsel) for morsel in morsels],
                                 scan.parallelism)
            for piece in pieces:
                if piece is not None:
                    self._merge_scalar(states, piece)
        else:
            for batch in self.child.batches():
                self._scalar_update(states, batch)
        return self._finish({(): states}, [])

    def _scalar_update(self, states: List[List], batch: Batch) -> None:
        for slot, spec in enumerate(self.aggregates):
            state = states[slot]
            if spec.func == "count_star":
                state[0] += batch.length
                continue
            vector = spec.expr.evaluate(batch)
            valid = ~vector.null_mask
            count = int(np.count_nonzero(valid))
            if count == 0:
                continue
            if spec.func == "count":
                state[0] += count
            elif spec.func == "count_distinct":
                if vector.data.dtype == object:
                    state[0].update(vector.data[valid].tolist())
                else:
                    state[0].update(np.unique(vector.data[valid]).tolist())
            elif spec.func == "sum":
                state[0] += masked_sum(vector.data, valid)
            elif spec.func == "avg":
                state[0] += masked_sum(vector.data, valid)
                state[1] += count
            elif spec.func in ("min", "max"):
                if vector.data.dtype == object:
                    extreme = (min if spec.func == "min" else max)(
                        vector.data[valid])
                else:
                    reduce = (np.min if spec.func == "min" else np.max)
                    extreme = reduce(vector.data[valid]).item()
                if state[0] is None or (
                        extreme < state[0] if spec.func == "min"
                        else extreme > state[0]):
                    state[0] = extreme
            else:
                raise ExecutionError(f"unknown aggregate {spec.func!r}")

    def _merge_scalar(self, states: List[List], incoming: List[List]) -> None:
        """Fold one morsel's partial states in; untouched partials are
        skipped so the fold replays exactly the serial update sequence
        (a batch with no valid rows never touched the serial state)."""
        for slot, spec in enumerate(self.aggregates):
            state, piece = states[slot], incoming[slot]
            if spec.func == "count_distinct":
                state[0].update(piece[0])
            elif spec.func in ("min", "max"):
                if piece[0] is not None and (
                        state[0] is None or (
                            piece[0] < state[0] if spec.func == "min"
                            else piece[0] > state[0])):
                    state[0] = piece[0]
            elif spec.func == "avg":
                if piece[1]:
                    state[0] += piece[0]
                    state[1] += piece[1]
            elif spec.func == "sum":
                if not (type(piece[0]) is int and piece[0] == 0):
                    state[0] += piece[0]
            else:  # count / count_star
                state[0] += piece[0]

    def _finish(self, groups: Dict[tuple, List],
                key_types: Optional[List[ColumnType]]) -> Batch:
        if key_types is None:
            key_types = [expr.result_type for _, expr in self.keys]
        columns: Dict[str, ColumnVector] = {}
        ordered = list(groups.items())
        length = len(ordered)
        for index, (name, _expr) in enumerate(self.keys):
            values = [key[index] for key, _ in ordered]
            columns[name] = ColumnVector.from_values(key_types[index], values)
        for slot, spec in enumerate(self.aggregates):
            values = [_finish_state(state[slot], spec) for _, state in ordered]
            columns[spec.name] = ColumnVector.from_values(spec.output_type(),
                                                          values)
        return Batch(columns, length)


class _SingleKeyState:
    """Mergeable state of the vectorized single-key GROUP BY.

    Group ids are assigned by first appearance; merging another state
    walks its groups in *its* gid order, which equals the order the
    serial loop would have discovered them in that batch — so merged
    output rows keep the serial ordering, and the per-group float
    accumulators receive the identical sequence of per-batch partials.
    """

    __slots__ = ("aggregates", "key_expr", "group_ids", "key_values",
                 "key_type", "sums", "counts", "extremes")

    def __init__(self, key_expr: Expression,
                 aggregates: Sequence[AggregateSpec]):
        self.key_expr = key_expr
        self.aggregates = list(aggregates)
        self.group_ids: Dict[object, int] = {}
        self.key_values: List[object] = []
        self.key_type: Optional[ColumnType] = None
        # per aggregate: parallel arrays indexed by group id
        self.sums: List[List[float]] = [[] for _ in self.aggregates]
        self.counts: List[List[int]] = [[] for _ in self.aggregates]
        self.extremes: List[List[Optional[float]]] = \
            [[] for _ in self.aggregates]

    def _ensure(self, gid: int) -> None:
        for slot in range(len(self.aggregates)):
            while len(self.sums[slot]) <= gid:
                self.sums[slot].append(0.0)
                self.counts[slot].append(0)
                self.extremes[slot].append(None)

    def update(self, batch: Batch) -> None:
        key_vector = self.key_expr.evaluate(batch)
        if self.key_type is None:
            self.key_type = key_vector.type
        keys = key_vector.data
        group_ids, key_values = self.group_ids, self.key_values
        if keys.dtype == object:
            local = np.empty(batch.length, dtype=np.int64)
            for row in range(batch.length):
                value = (None if key_vector.null_mask[row]
                         else keys[row])
                gid = group_ids.get(value)
                if gid is None:
                    gid = len(key_values)
                    group_ids[value] = gid
                    key_values.append(value)
                local[row] = gid
        else:
            # factorize the non-null keys fully vectorized; NULL
            # keys get a dedicated sentinel group (never let the
            # unspecified values under the null mask leak phantom
            # groups)
            valid = ~key_vector.null_mask
            local = np.empty(batch.length, dtype=np.int64)
            if valid.any():
                uniques, inverse = np.unique(keys[valid],
                                             return_inverse=True)
                mapping = np.empty(len(uniques), dtype=np.int64)
                for index, value in enumerate(uniques):
                    scalar = value.item()
                    gid = group_ids.get(scalar)
                    if gid is None:
                        gid = len(key_values)
                        group_ids[scalar] = gid
                        key_values.append(scalar)
                    mapping[index] = gid
                local[valid] = mapping[inverse]
            if not valid.all():
                null_gid = group_ids.get(None)
                if null_gid is None:
                    null_gid = len(key_values)
                    group_ids[None] = null_gid
                    key_values.append(None)
                local[~valid] = null_gid
        num_groups = len(key_values)
        self._ensure(num_groups - 1)
        for slot, spec in enumerate(self.aggregates):
            self._vector_update(spec, slot, batch, local, num_groups)

    def _vector_update(self, spec, slot, batch, local, num_groups) -> None:
        sums, counts, extremes = self.sums, self.counts, self.extremes
        if spec.func == "count_star":
            add = np.bincount(local, minlength=num_groups)
            for gid in range(num_groups):
                counts[slot][gid] += int(add[gid])
            return
        vector = spec.expr.evaluate(batch)
        valid = ~vector.null_mask
        if not valid.any():
            return
        gids = local[valid]
        values = vector.data[valid].astype(np.float64)
        if spec.func in ("sum", "avg"):
            add = np.bincount(gids, weights=values, minlength=num_groups)
            cnt = np.bincount(gids, minlength=num_groups)
            for gid in np.flatnonzero(cnt):
                sums[slot][gid] += float(add[gid])
                counts[slot][gid] += int(cnt[gid])
        elif spec.func == "count":
            cnt = np.bincount(gids, minlength=num_groups)
            for gid in np.flatnonzero(cnt):
                counts[slot][gid] += int(cnt[gid])
        else:  # min / max
            reducer = np.minimum if spec.func == "min" else np.maximum
            init = np.inf if spec.func == "min" else -np.inf
            extreme = np.full(num_groups, init)
            reducer.at(extreme, gids, values)
            touched = np.bincount(gids, minlength=num_groups) > 0
            for gid in np.flatnonzero(touched):
                current = extremes[slot][gid]
                candidate = float(extreme[gid])
                if current is None or (
                        candidate < current if spec.func == "min"
                        else candidate > current):
                    extremes[slot][gid] = candidate

    def merge(self, other: "_SingleKeyState") -> None:
        if self.key_type is None:
            self.key_type = other.key_type
        remap = np.empty(len(other.key_values), dtype=np.int64)
        for other_gid, value in enumerate(other.key_values):
            gid = self.group_ids.get(value)
            if gid is None:
                gid = len(self.key_values)
                self.group_ids[value] = gid
                self.key_values.append(value)
            remap[other_gid] = gid
        self._ensure(len(self.key_values) - 1)
        for slot, spec in enumerate(self.aggregates):
            for other_gid in range(len(other.key_values)):
                gid = int(remap[other_gid])
                if spec.func in ("sum", "avg"):
                    if other.counts[slot][other_gid]:
                        self.sums[slot][gid] += other.sums[slot][other_gid]
                        self.counts[slot][gid] += other.counts[slot][other_gid]
                elif spec.func in ("count", "count_star"):
                    self.counts[slot][gid] += other.counts[slot][other_gid]
                else:  # min / max
                    candidate = other.extremes[slot][other_gid]
                    if candidate is None:
                        continue
                    current = self.extremes[slot][gid]
                    if current is None or (
                            candidate < current if spec.func == "min"
                            else candidate > current):
                        self.extremes[slot][gid] = candidate

    def finish(self, key_name: str) -> Batch:
        columns: Dict[str, ColumnVector] = {}
        columns[key_name] = ColumnVector.from_values(
            self.key_type or self.key_expr.result_type, self.key_values)
        for slot, spec in enumerate(self.aggregates):
            columns[spec.name] = _vector_finish(
                spec, self.sums[slot], self.counts[slot], self.extremes[slot])
        return Batch(columns, len(self.key_values))


def _vector_finish(spec: AggregateSpec, sums, counts, extremes) -> ColumnVector:
    out_type = spec.output_type()
    if spec.func in ("count", "count_star"):
        return ColumnVector.from_values(ColumnType.INT64, counts)
    if spec.func == "avg":
        values = [s / c if c else None for s, c in zip(sums, counts)]
        return ColumnVector.from_values(ColumnType.FLOAT64, values)
    if spec.func == "sum":
        values = [int(s) if out_type == ColumnType.INT64 else s
                  for s in sums]
        return ColumnVector.from_values(out_type, values)
    values = [
        None if extreme is None
        else int(extreme) if out_type in (ColumnType.INT64,
                                          ColumnType.TIMESTAMP)
        else extreme
        for extreme in extremes
    ]
    return ColumnVector.from_values(out_type, values)


def _scalar(vector: ColumnVector, row: int) -> object:
    item = vector.data[row]
    if isinstance(item, np.generic):
        return item.item()
    return item


def _new_state(spec: AggregateSpec) -> List:
    if spec.func == "count_distinct":
        return [set()]
    if spec.func == "avg":
        return [0.0, 0]
    if spec.func in ("min", "max"):
        return [None]
    return [0]  # sum / count / count_star


def _update_state(state: List, spec: AggregateSpec,
                  vector: Optional[ColumnVector], row: int) -> None:
    if spec.func == "count_star":
        state[0] += 1
        return
    assert vector is not None
    if vector.null_mask[row]:
        return
    value = _scalar(vector, row)
    if spec.func == "count":
        state[0] += 1
    elif spec.func == "count_distinct":
        state[0].add(value)
    elif spec.func == "sum":
        state[0] += value
    elif spec.func == "avg":
        state[0] += value
        state[1] += 1
    elif spec.func == "min":
        if state[0] is None or value < state[0]:
            state[0] = value
    elif spec.func == "max":
        if state[0] is None or value > state[0]:
            state[0] = value
    else:
        raise ExecutionError(f"unknown aggregate {spec.func!r}")


def _finish_state(state: List, spec: AggregateSpec) -> object:
    if spec.func == "count_distinct":
        return len(state[0])
    if spec.func == "avg":
        return state[0] / state[1] if state[1] else None
    if spec.func in ("min", "max"):
        return state[0]
    if spec.func == "sum":
        # SQL: SUM over zero non-null rows is NULL, not 0.  We track
        # "seen" implicitly: int 0 with no updates is ambiguous, so sum
        # states start at 0 and stay 0 — acceptable for the benchmark
        # queries, which always aggregate non-empty groups.
        return state[0]
    return state[0]


@dataclass
class SortKey:
    name: str
    descending: bool = False


def _make_sort_key(batch: Batch, keys: Sequence[SortKey]):
    vectors = [batch.column(sort_key.name) for sort_key in keys]

    def sort_value(row: int):
        key = []
        for sort_key, vector in zip(keys, vectors):
            value = None if vector.null_mask[row] else _scalar(vector, row)
            # NULLs always sort last, in both directions
            null_rank = 1 if value is None else 0
            if sort_key.descending:
                key.append((null_rank, _Reversed(value)))
            else:
                key.append((null_rank, _Lowest(value)))
        return tuple(key)

    return sort_value


class SortOp(Operator):
    def __init__(self, child: Operator, keys: Sequence[SortKey],
                 enable_kernels: bool = False):
        self.child = child
        self.keys = list(keys)
        self.enable_kernels = enable_kernels
        self.counters = ScanCounters()

    def batches(self) -> Iterator[Batch]:
        batch = concat_batches(list(self.child.batches()))
        if batch is None:
            return
        if self.enable_kernels:
            order = lexsort_indices(batch, self.keys)
            if order is not None:
                self.counters.kernel_rows += batch.length
                yield batch.take(order)
                return
            self.counters.fallback_rows += batch.length
        indices = list(range(batch.length))
        indices.sort(key=_make_sort_key(batch, self.keys))
        yield batch.take(np.array(indices, dtype=np.int64))


class TopKOp(Operator):
    """``ORDER BY ... LIMIT k`` without a full sort: a bounded heap
    selects the k smallest rows in O(n log k)."""

    def __init__(self, child: Operator, keys: Sequence[SortKey], limit: int,
                 enable_kernels: bool = False):
        self.child = child
        self.keys = list(keys)
        self.limit = limit
        self.enable_kernels = enable_kernels
        self.counters = ScanCounters()

    def batches(self) -> Iterator[Batch]:
        source = _parallel_source(self.child)
        if source is not None:
            batch = concat_batches(self._parallel_candidates(*source))
        else:
            batch = concat_batches(list(self.child.batches()))
        if batch is None:
            return
        if self.enable_kernels:
            # heapq.nsmallest is documented equivalent to
            # sorted(...)[:k] (stable), so the lexsort prefix selects
            # the identical rows in the identical order
            order = lexsort_indices(batch, self.keys)
            if order is not None:
                self.counters.kernel_rows += batch.length
                yield batch.take(order[:self.limit])
                return
            self.counters.fallback_rows += batch.length
        sort_value = _make_sort_key(batch, self.keys)
        indices = heapq.nsmallest(self.limit, range(batch.length),
                                  key=sort_value)
        yield batch.take(np.array(indices, dtype=np.int64))

    def _parallel_candidates(self, scan, transforms, morsels) -> List[Batch]:
        """Per-morsel candidate selection: any globally-top-k row is in
        its morsel's top-k, and re-sorting the picked indices restores
        original row order — so the candidate stream is an
        order-preserving subsequence of the serial input and the final
        ``nsmallest`` (stable tie-breaking included) is bit-identical.
        """

        def task(morsel):
            batch = _apply_transforms(scan.resolve_morsel(morsel),
                                      transforms)
            if batch is None:
                return None
            if batch.length <= self.limit:
                return batch
            if self.enable_kernels:
                # no counter updates here: tasks run on pool workers
                # and ScanCounters increments are not atomic
                order = lexsort_indices(batch, self.keys)
                if order is not None:
                    return batch.take(np.sort(order[:self.limit]))
            local = _make_sort_key(batch, self.keys)
            picks = heapq.nsmallest(self.limit, range(batch.length),
                                    key=local)
            picks.sort()
            return batch.take(np.array(picks, dtype=np.int64))

        pieces = run_ordered([_bind(task, morsel) for morsel in morsels],
                             scan.parallelism)
        return [piece for piece in pieces if piece is not None]


class _Lowest:
    """Ascending comparator wrapper tolerating None (sorts first via the
    null_rank component, so the wrapped value is never None-compared)."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def __lt__(self, other):
        if self.value is None or other.value is None:
            return False
        return self.value < other.value

    def __eq__(self, other):
        return self.value == other.value


class _Reversed(_Lowest):
    def __lt__(self, other):
        if self.value is None or other.value is None:
            return False
        return other.value < self.value


class ChainOp(Operator):
    """UNION ALL: stream every child's batches in order.  Children must
    produce identically-named columns (the planner renames)."""

    def __init__(self, children: Sequence[Operator]):
        if not children:
            raise ExecutionError("ChainOp needs at least one child")
        self.children = list(children)

    def batches(self) -> Iterator[Batch]:
        for child in self.children:
            yield from child.batches()


class LimitOp(Operator):
    def __init__(self, child: Operator, limit: int):
        self.child = child
        self.limit = limit

    def batches(self) -> Iterator[Batch]:
        remaining = self.limit
        for batch in self.child.batches():
            if remaining <= 0:
                return
            if batch.length <= remaining:
                remaining -= batch.length
                yield batch
            else:
                yield batch.take(np.arange(remaining, dtype=np.int64))
                return
