"""Zero-copy Arrow export of resolved tile columns.

The engine's :class:`~repro.storage.column.ColumnVector` layout —
a contiguous numpy value array plus a boolean null mask — is one
``np.packbits`` away from Arrow's physical layout, so fixed-width
columns (INT64 / FLOAT64 / DECIMAL / TIMESTAMP) are handed to
``pyarrow.Array.from_buffers`` without copying or re-serializing the
values: the Arrow array wraps the scan's own numpy buffer.  BOOL
bit-packs its values, STRING builds an Arrow string array, and JSONB
columns (including cross-tile type conflicts) serialize each document
fragment to a JSON string.

``pyarrow`` is strictly optional: importing this module never imports
it, and every entry point raises a clean
:class:`~repro.errors.ExecutionError` when it is missing.

Export reads through :class:`~repro.engine.scan.TableScan` with one
batch per tile (``batch_rows = tile_size``), so cast rewriting,
type-conflict NULL re-checks and JSONB fallback all apply exactly as
they do for queries — a path extracted in one tile and fallback-only
in another still exports as one coherent Arrow column.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.jsonpath import KeyPath
from repro.core.types import ColumnType
from repro.engine.scan import AccessRequest, TableScan
from repro.errors import ExecutionError
from repro.storage.column import ColumnVector

#: alias used for the export scan's access-request names
_ALIAS = "arrow"


def _pyarrow():
    try:
        import pyarrow
    except ImportError:
        raise ExecutionError(
            "Arrow export requires the optional 'pyarrow' dependency "
            "(install the 'arrow' extra: pip install repro[arrow])")
    return pyarrow


def default_export_paths(relation) -> List[Tuple[KeyPath, ColumnType]]:
    """The exportable schema of a relation: the union of every sealed
    tile's extracted paths with their header types, ordered by path
    string for determinism.  A path whose type differs across tiles
    (or is flagged conflicting within one) degrades to JSONB — exported
    as JSON text rather than a lossy cast."""
    types: Dict[KeyPath, ColumnType] = {}
    for tile in relation.tiles:
        for path, column in tile.header.columns.items():
            column_type = (ColumnType.JSONB if column.has_type_conflicts
                           else column.column_type)
            seen = types.get(path)
            if seen is None:
                types[path] = column_type
            elif seen != column_type:
                types[path] = ColumnType.JSONB
    return sorted(types.items(), key=lambda item: str(item[0]))


def _arrow_type(pa, column_type: ColumnType):
    if column_type == ColumnType.INT64:
        return pa.int64()
    if column_type in (ColumnType.FLOAT64, ColumnType.DECIMAL):
        return pa.float64()
    if column_type == ColumnType.TIMESTAMP:
        return pa.timestamp("us")  # tiles store epoch microseconds
    if column_type == ColumnType.BOOL:
        return pa.bool_()
    return pa.string()  # STRING and JSON-serialized JSONB


def _validity(pa, mask: np.ndarray):
    """(validity buffer, null count) for one null mask; ``(None, 0)``
    when every row is valid so Arrow omits the bitmap entirely."""
    nulls = int(np.count_nonzero(mask))
    if not nulls:
        return None, 0
    return pa.py_buffer(np.packbits(~mask, bitorder="little")), nulls


def vector_to_arrow(vector: ColumnVector, pa=None):
    """One ColumnVector → one Arrow array (fixed-width types wrap the
    numpy buffer in place; no value is re-serialized)."""
    pa = pa or _pyarrow()
    length = len(vector)
    arrow_type = _arrow_type(pa, vector.type)
    validity, nulls = _validity(pa, vector.null_mask)
    if vector.type in (ColumnType.INT64, ColumnType.TIMESTAMP,
                       ColumnType.FLOAT64, ColumnType.DECIMAL):
        values = pa.py_buffer(np.ascontiguousarray(vector.data))
        return pa.Array.from_buffers(arrow_type, length,
                                     [validity, values], nulls)
    if vector.type == ColumnType.BOOL:
        bits = np.packbits(vector.data.astype(bool), bitorder="little")
        return pa.Array.from_buffers(arrow_type, length,
                                     [validity, pa.py_buffer(bits)], nulls)
    mask = vector.null_mask
    if vector.type == ColumnType.STRING:
        # values under the mask are unspecified — normalize to None
        values = [None if mask[row] else vector.data[row]
                  for row in range(length)]
        return pa.array(values, type=arrow_type)
    # JSONB: resolved vectors hold plain Python fragments
    values = [None if mask[row]
              else json.dumps(vector.data[row], separators=(",", ":"),
                              sort_keys=False)
              for row in range(length)]
    return pa.array(values, type=arrow_type)


def relation_to_arrow(relation,
                      paths: Optional[List[Tuple[KeyPath,
                                                 ColumnType]]] = None,
                      options=None):
    """Export *relation* as a ``pyarrow.Table``.

    *paths* defaults to :func:`default_export_paths`; pass an explicit
    ``[(KeyPath, ColumnType), ...]`` list to project or re-type.
    """
    pa = _pyarrow()
    if paths is None:
        paths = default_export_paths(relation)
    requests = [AccessRequest.make(_ALIAS, path, target, False)
                for path, target in paths]
    fields = [pa.field(str(path), _arrow_type(pa, target))
              for path, target in paths]
    schema = pa.schema(fields)
    names = [request.name for request in requests]
    scan = TableScan(relation, requests,
                     batch_rows=max(1, relation.config.tile_size),
                     enable_skipping=False,
                     multipath_shred=(options.enable_multipath_shred
                                      if options is not None else True))
    record_batches = []
    for batch in scan.batches():
        arrays = [vector_to_arrow(batch.column(name), pa)
                  for name in names]
        record_batches.append(
            pa.RecordBatch.from_arrays(arrays, schema=schema))
    if not record_batches:
        return schema.empty_table()
    return pa.Table.from_batches(record_batches, schema=schema)


def table_to_ipc_bytes(table) -> bytes:
    """Serialize an Arrow table to the IPC stream format (the server's
    ``export_arrow`` wire payload)."""
    pa = _pyarrow()
    sink = pa.BufferOutputStream()
    with pa.ipc.new_stream(sink, table.schema) as writer:
        writer.write_table(table)
    return sink.getvalue().to_pybytes()
