"""The maintenance daemon: a rate-limited background executor.

One :class:`MaintenanceDaemon` watches a set of relations (embedded:
``Database.start_maintenance()`` runs :meth:`run_cycle` on its own
thread; server: an asyncio task schedules cycles on the query pool).
Each cycle it asks the planner for at most ``max_actions_per_cycle``
actions and executes them under the same guards the foreground path
uses:

* reorganizations and recomputations splice rebuilt tiles in under the
  caller-provided *append guard* (the server's per-table writer lock),
  so a concurrent scan never observes a half-swapped tiles list;
* tile-cache invalidation rides on the fresh-uid path — a rebuilt tile
  has a new uid, the replaced one's cache entries are dropped eagerly;
* with *backpressure* wired (server: in-flight query count), a
  saturated pool skips the cycle entirely — maintenance yields to
  foreground work by construction;
* every action is journaled (``begin`` / ``commit`` / ``failed``)
  through a WAL segment.  A crash between ``begin`` and ``commit``
  re-queues the action on restart; the action itself never touches
  durable row data (a reorganization permutes rows among in-memory
  tiles — the snapshot + ingest WAL still hold every row), so replay
  is idempotent and can neither lose nor duplicate rows.

An exception inside one action marks it ``failed`` and the daemon
moves on: background maintenance must never die and never surface
errors into client connections.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.maintenance.health import HealthTracker
from repro.maintenance.policy import (
    ActionKind,
    MaintenanceAction,
    MaintenanceConfig,
    MaintenancePlanner,
    tile_by_number,
)
from repro.storage.relation import Relation

#: journal segments are truncated once they grow past this many
#: records with nothing pending (the journal is bookkeeping, not data)
JOURNAL_COMPACT_RECORDS = 512


class MaintenanceJournal:
    """Action journal over a WAL segment (``wal/maintenance.journal``).

    Records are ``{"op": begin|commit|failed, ...action}``.  An action
    whose ``begin`` has no matching ``commit``/``failed`` was in flight
    when the process died; :meth:`pending` returns those so the daemon
    re-queues them first after a restart.
    """

    def __init__(self, wal):
        self.wal = wal

    def log(self, op: str, action: MaintenanceAction) -> None:
        self.wal.append({"op": op, **action.as_dict()})

    def pending(self) -> List[dict]:
        begun: Dict[tuple, dict] = {}
        for record in self.wal.replay():
            key = (record.get("table"), record.get("kind"),
                   record.get("target"))
            if record.get("op") == "begin":
                begun[key] = record
            else:
                begun.pop(key, None)
        return list(begun.values())

    def compact(self) -> None:
        if self.wal.record_count > JOURNAL_COMPACT_RECORDS \
                and not self.pending():
            self.wal.truncate()

    def close(self) -> None:
        self.wal.close()


class MaintenanceDaemon:
    """Runs maintenance cycles over a table map.

    *tables* is a mapping ``name -> Relation`` or a zero-argument
    callable returning one (so tables created after the daemon keep
    getting picked up).  *append_guard_for* maps a table name to the
    guard held while rebuilt tiles are spliced in (the server passes
    its writer lock); *backpressure* returns True when a cycle should
    yield to foreground load.
    """

    def __init__(self, tables, config: Optional[MaintenanceConfig] = None,
                 *,
                 journal: Optional[MaintenanceJournal] = None,
                 append_guard_for: Optional[Callable[[str], object]] = None,
                 backpressure: Optional[Callable[[], bool]] = None):
        self.config = config or MaintenanceConfig()
        self._tables = tables if callable(tables) else (lambda: tables)
        self.journal = journal
        self._append_guard_for = append_guard_for
        self._backpressure = backpressure
        self.planner = MaintenancePlanner(self.config)
        self._trackers: Dict[str, HealthTracker] = {}
        self._trackers_lock = threading.Lock()
        self._cycle_lock = threading.Lock()
        self._paused = threading.Event()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self.counters = {
            "cycles": 0, "actions": 0, "reorders": 0, "recomputes": 0,
            "compactions": 0, "merges": 0, "noops": 0, "errors": 0,
            "skipped_backpressure": 0, "recovered": 0,
        }
        self._counters_lock = threading.Lock()
        self.last_actions: deque = deque(maxlen=16)
        #: actions journaled as begun but never committed before the
        #: previous process died — executed first, ahead of the plan
        self._recovered: List[MaintenanceAction] = []
        if journal is not None:
            self._recovered = [MaintenanceAction.from_dict(record)
                               for record in journal.pending()]
            self._bump("recovered", len(self._recovered))

    # ------------------------------------------------------------------
    # bookkeeping

    def _bump(self, counter: str, amount: int = 1) -> None:
        with self._counters_lock:
            self.counters[counter] += amount

    def _tracker(self, name: str, relation: Relation) -> HealthTracker:
        with self._trackers_lock:
            tracker = self._trackers.get(name)
            if tracker is None or tracker.relation is not relation:
                tracker = HealthTracker(relation)
                self._trackers[name] = tracker
            return tracker

    def _guard(self, name: str):
        if self._append_guard_for is None:
            return None
        return self._append_guard_for(name)

    # ------------------------------------------------------------------
    # the cycle

    def run_cycle(self, force: bool = False) -> List[dict]:
        """Plan and execute one maintenance cycle; returns the executed
        action records.  With *force* (the ``maintenance force``
        command) pause, enable and backpressure checks are bypassed."""
        if not force:
            if not self.config.enabled or self._paused.is_set():
                return []
            if self._backpressure is not None and self._backpressure():
                self._bump("skipped_backpressure")
                return []
        with self._cycle_lock:
            tables = dict(self._tables())
            tracked = {name: (relation, self._tracker(name, relation))
                       for name, relation in tables.items()}
            queue: List[MaintenanceAction] = []
            seen = set()
            recovered, self._recovered = self._recovered, []
            for action in recovered + self.planner.plan(tracked):
                if action.table in tables and action.key() not in seen:
                    seen.add(action.key())
                    queue.append(action)
            executed = [self._execute(action, tables) for action in queue]
            for _relation, tracker in tracked.values():
                tracker.tick()
            self._bump("cycles")
            if self.journal is not None:
                try:
                    self.journal.compact()
                except Exception:
                    self._bump("errors")
            return executed

    def _execute(self, action: MaintenanceAction,
                 tables: Mapping[str, Relation]) -> dict:
        relation = tables[action.table]
        tracker = self._tracker(action.table, relation)
        guard = self._guard(action.table)
        if self.journal is not None:
            self.journal.log("begin", action)
        status, detail = "done", None
        try:
            if action.kind is ActionKind.REORDER_PARTITION:
                # count the attempt before trying, so a hopeless
                # (genuinely heterogeneous) partition backs off even
                # when reordering finds the identity order
                tracker.note_reorg_attempt(action.target,
                                           self.config.reorg_cooldown_cycles)
                changed = relation.reorganize_partition(
                    action.target, append_guard=guard)
                if changed:
                    self._bump("reorders")
                else:
                    status = "noop"
                    self._bump("noops")
            elif action.kind is ActionKind.RECOMPUTE_TILE:
                tile = tile_by_number(relation, action.target)
                if tile is None:
                    status = "noop"
                    self._bump("noops")
                else:
                    relation.recompute_tile(tile, append_guard=guard)
                    self._bump("recomputes")
            elif action.kind is ActionKind.COMPACT_BUFFER:
                relation.flush_inserts(append_guard=guard)
                self._bump("compactions")
            elif action.kind is ActionKind.COMPACT_TILES:
                # re-derive the run from live state: after a crash the
                # recovered action re-runs against whatever survived —
                # old tiles (the merge repeats) or the merged tile (the
                # run no longer exists and this is a clean no-op), so
                # replay lands on "either old or new, never both"
                lsm_config = getattr(relation, "lsm_config", None)
                fanout = lsm_config.fanout if lsm_config is not None else 4
                changed = relation.compact_tiles(action.target, fanout,
                                                 append_guard=guard)
                if changed:
                    self._bump("merges")
                else:
                    status = "noop"
                    self._bump("noops")
        except Exception as exc:  # the daemon must survive any action
            status, detail = "error", f"{type(exc).__name__}: {exc}"
            self._bump("errors")
        finally:
            if self.journal is not None:
                self.journal.log("commit" if status != "error" else "failed",
                                 action)
        record = dict(action.as_dict(), status=status)
        if detail:
            record["detail"] = detail
        self.last_actions.append(record)
        self._bump("actions")
        return record

    # ------------------------------------------------------------------
    # control surface (the `maintenance` server command)

    def pause(self) -> None:
        self._paused.set()

    def resume(self) -> None:
        self._paused.clear()

    @property
    def paused(self) -> bool:
        return self._paused.is_set()

    def status(self) -> dict:
        """Everything an operator asks for: switches, counters, the
        most recent actions, and per-table health."""
        tables = {}
        for name, relation in sorted(dict(self._tables()).items()):
            tracker = self._tracker(name, relation)
            tables[name] = {
                "extracted_fraction": round(relation.extracted_fraction(), 4),
                "fallback_rate": round(tracker.fallback_rate, 4),
                "eviction_churn": tracker.eviction_churn,
                "pending": relation.pending_inserts,
                "partitions": [health.as_dict()
                               for health in tracker.snapshot()],
            }
            if getattr(relation, "lsm_config", None) is not None:
                # per-level occupancy + merge counters (repro.lsm)
                tables[name]["lsm"] = relation.lsm_status()
        with self._counters_lock:
            counters = dict(self.counters)
        return {
            "enabled": self.config.enabled,
            "paused": self.paused,
            "running": self._thread is not None,
            "interval_s": self.config.interval_s,
            "counters": counters,
            "last_actions": list(self.last_actions),
            "tables": tables,
        }

    # ------------------------------------------------------------------
    # embedded thread loop (Database.start_maintenance)

    def start(self) -> "MaintenanceDaemon":
        if self._thread is None:
            self._stop.clear()
            self._thread = threading.Thread(target=self._loop, daemon=True,
                                            name="repro-maintenance")
            self._thread.start()
        return self

    def _loop(self) -> None:
        while not self._stop.wait(self.config.interval_s):
            try:
                self.run_cycle()
            except Exception:  # pragma: no cover - defensive
                self._bump("errors")

    def stop(self, timeout: float = 10.0) -> None:
        thread, self._thread = self._thread, None
        if thread is not None:
            self._stop.set()
            thread.join(timeout=timeout)
