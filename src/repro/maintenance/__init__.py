"""Online adaptive storage maintenance (DESIGN.md §6d).

The paper's robustness machinery — Section 3.2 tuple reordering and
Section 4 incremental tile recomputation — assumes the storage layer
*continuously* repairs itself as heterogeneous data arrives.  This
package closes that loop as a background subsystem:

* :mod:`repro.maintenance.health` — per-tile/per-partition health
  records fed by Relation storage events and PR 2's ScanCounters;
* :mod:`repro.maintenance.policy` — configurable thresholds
  (:class:`MaintenanceConfig`, ``REPRO_MAINT_*``) turning health into
  a prioritized queue of ``REORDER_PARTITION`` / ``RECOMPUTE_TILE`` /
  ``COMPACT_BUFFER`` actions;
* :mod:`repro.maintenance.daemon` — the rate-limited background
  executor, embedded (``Database.start_maintenance()``) or inside
  ``repro.server`` with WAL journaling and backpressure.
"""

from repro.maintenance.daemon import (
    MaintenanceDaemon,
    MaintenanceJournal,
)
from repro.maintenance.health import HealthTracker, PartitionHealth
from repro.maintenance.policy import (
    ActionKind,
    MaintenanceAction,
    MaintenanceConfig,
    MaintenancePlanner,
)

__all__ = [
    "ActionKind",
    "HealthTracker",
    "MaintenanceAction",
    "MaintenanceConfig",
    "MaintenanceDaemon",
    "MaintenanceJournal",
    "MaintenancePlanner",
    "PartitionHealth",
]
