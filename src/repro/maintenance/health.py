"""Tile and partition health tracking — the sensor half of
``repro.maintenance``.

A :class:`HealthTracker` observes one relation through two channels:

* **storage events** (:meth:`Relation.add_event_hook`): tile seals,
  in-place updates, tile recomputations, partition reorganizations and
  LSM compaction merges maintain sticky per-partition counters
  (updates, rows since the last reorganization, reorder attempts,
  cooldown);
* **scan totals** (PR 2's mergeable ScanCounters, folded into
  ``Relation.scan_totals`` by the engine): the delta of
  ``fallback_tiles`` over ``tiles_scanned`` between refreshes is the
  observed *fallback-probe rate* — direct evidence that queries are
  degrading to JSONB/text fallback scans because extraction is stale.

The *extracted fraction* itself is never cached: :meth:`snapshot`
measures it live from the tiles (row-weighted mean of each tile's
``len(columns) / len(key_counts)``), so a reorganization is reflected
immediately and the metric can never drift from storage reality.

The tracker is a pure observer: event hooks only mutate its own
dictionaries under its own lock, and :class:`Relation` swallows hook
exceptions, so health tracking can never break the foreground
insert/update/seal path.
"""

from __future__ import annotations

import dataclasses
import threading
from typing import Dict, List

from repro.storage.relation import Relation
from repro.tiles.tile import Tile


@dataclasses.dataclass
class PartitionHealth:
    """Observed state of one partition (the Section 3.2 reorder unit).

    ``extraction`` is the row-weighted mean of the member tiles'
    extracted fraction; ``attempts`` counts reorder attempts since the
    partition's content last changed (seal / recompute reset it — the
    satellite fix that keeps recomputed partitions re-eligible);
    ``cooldown`` is the number of planner cycles to skip before the
    next attempt.
    """

    partition: int
    tiles: int = 0
    rows: int = 0
    extraction: float = 1.0
    updates: int = 0
    rows_since_reorg: int = 0
    attempts: int = 0
    cooldown: int = 0
    #: tile payloads of this partition the residency budget paged out
    #: (eviction churn: a hot partition that keeps cycling through the
    #: budget is a signal for the operator to raise ``--memory-mb``)
    evictions: int = 0

    def as_dict(self) -> dict:
        return {
            "partition": self.partition,
            "tiles": self.tiles,
            "rows": self.rows,
            "extraction": round(self.extraction, 4),
            "updates": self.updates,
            "rows_since_reorg": self.rows_since_reorg,
            "attempts": self.attempts,
            "cooldown": self.cooldown,
            "evictions": self.evictions,
        }


class HealthTracker:
    """Per-relation health records feeding the maintenance planner."""

    def __init__(self, relation: Relation):
        self.relation = relation
        self._lock = threading.Lock()
        self._partitions: Dict[int, PartitionHealth] = {}
        #: in-place updates per tile number since that tile was last
        #: rebuilt — the RECOMPUTE_TILE trigger
        self._tile_updates: Dict[int, int] = {}
        self._scan_seen = {"fallback_tiles": 0, "tiles_scanned": 0}
        self._fallback_rate = 0.0
        #: total payload evictions observed on this relation (churn)
        self._evictions = 0
        relation.add_event_hook(self._on_event)

    # ------------------------------------------------------------------
    # event feed

    def _record_locked(self, partition: int) -> PartitionHealth:
        record = self._partitions.get(partition)
        if record is None:
            record = PartitionHealth(partition)
            self._partitions[partition] = record
        return record

    def _partition_of(self, tile: Tile) -> int:
        size = max(1, self.relation.config.partition_size)
        return tile.header.tile_number // size

    def _on_event(self, event: str, relation: Relation,
                  payload: object) -> None:
        with self._lock:
            if event == "seal":
                record = self._record_locked(self._partition_of(payload))
                record.rows_since_reorg += payload.row_count
                # fresh content: the partition may be reorderable again
                record.attempts = 0
            elif event == "update":
                number = payload.header.tile_number
                self._tile_updates[number] = \
                    self._tile_updates.get(number, 0) + 1
                self._record_locked(self._partition_of(payload)).updates += 1
            elif event == "recompute":
                # a recomputed tile changed its partition's content, so
                # the partition must become re-eligible for Section 3.2
                # reordering instead of staying pinned "attempted"
                self._tile_updates.pop(payload.header.tile_number, None)
                record = self._record_locked(self._partition_of(payload))
                record.attempts = 0
                record.cooldown = 0
                record.updates = 0
            elif event == "compact":
                # an LSM merge rewrote a run of tiles into one: the
                # inputs' update history describes no live tile any
                # more, and the merged tile's partition changed content
                # so it becomes re-eligible for §3.2 reordering
                for number in payload.get("inputs", ()):
                    self._tile_updates.pop(number, None)
                record = self._record_locked(
                    self._partition_of(payload["tile"]))
                record.attempts = 0
                record.cooldown = 0
                record.updates = 0
            elif event == "reorganize":
                record = self._record_locked(int(payload))
                record.rows_since_reorg = 0
                record.updates = 0
            elif event == "evict":
                # the tile store paged this tile's payload out; payload
                # is the TileHandle (header always resident)
                self._evictions += 1
                self._record_locked(self._partition_of(payload)) \
                    .evictions += 1
        if event == "reorganize":
            # the partition's tiles were rebuilt: their update history
            # no longer describes any live tile
            numbers = [tile.header.tile_number
                       for tile in relation.partition_tiles(int(payload))]
            with self._lock:
                for number in numbers:
                    self._tile_updates.pop(number, None)

    # ------------------------------------------------------------------
    # scan signal

    def refresh_scan_signal(self) -> float:
        """Fold the engine's scan totals into the fallback-probe rate:
        fraction of ``(tile, access)`` resolutions since the previous
        refresh that were served from the JSONB/text fallback."""
        totals = self.relation.scan_totals
        fallback = int(totals.get("fallback_tiles", 0))
        scanned = int(totals.get("tiles_scanned", 0))
        with self._lock:
            delta_fallback = fallback - self._scan_seen["fallback_tiles"]
            delta_scanned = scanned - self._scan_seen["tiles_scanned"]
            self._scan_seen = {"fallback_tiles": fallback,
                               "tiles_scanned": scanned}
            if delta_scanned > 0:
                self._fallback_rate = max(
                    0.0, min(1.0, delta_fallback / delta_scanned))
            return self._fallback_rate

    @property
    def fallback_rate(self) -> float:
        with self._lock:
            return self._fallback_rate

    @property
    def eviction_churn(self) -> int:
        """Total payload evictions observed on this relation."""
        with self._lock:
            return self._evictions

    # ------------------------------------------------------------------
    # planner interface

    def tile_updates(self) -> Dict[int, int]:
        with self._lock:
            return dict(self._tile_updates)

    def note_reorg_attempt(self, partition: int, cooldown: int) -> None:
        """Record that the daemon tried to reorder *partition* —
        counted for successful and fruitless attempts alike, so a
        genuinely heterogeneous partition is not re-mined forever."""
        with self._lock:
            record = self._record_locked(partition)
            record.attempts += 1
            record.cooldown = max(record.cooldown, cooldown)

    def tick(self) -> None:
        """One planner cycle passed: cooldowns decay."""
        with self._lock:
            for record in self._partitions.values():
                if record.cooldown > 0:
                    record.cooldown -= 1

    def snapshot(self) -> List[PartitionHealth]:
        """Live health of every partition: extraction measured from the
        tiles right now, sticky event counters merged in.  Returns
        copies — mutating them does not affect the tracker."""
        relation = self.relation
        if relation.text_rows is not None:
            return []
        out: List[PartitionHealth] = []
        for index in range(relation.partition_count):
            tiles = relation.partition_tiles(index)
            rows = sum(tile.row_count for tile in tiles)
            if rows:
                extraction = sum(
                    relation.tile_extraction_fraction(tile) * tile.row_count
                    for tile in tiles) / rows
            else:
                extraction = 1.0
            with self._lock:
                record = self._record_locked(index)
                record.tiles = len(tiles)
                record.rows = rows
                record.extraction = extraction
                out.append(dataclasses.replace(record))
        return out
