"""Maintenance policy: thresholds and the action planner.

Turns :class:`~repro.maintenance.health.HealthTracker` observations
into a prioritized queue of actions:

* ``REORDER_PARTITION`` — Section 3.2 tuple reordering across one
  partition whose row-weighted extracted fraction fell below the
  threshold (shuffled ingest, combined logs);
* ``RECOMPUTE_TILE`` — re-mine and re-extract one tile that absorbed
  many in-place updates (Section 4.7) *before* the relation's own
  majority-outlier emergency recomputation would kick in;
* ``COMPACT_BUFFER`` — seal a straggler insert buffer that stopped
  growing, so its rows become scannable tiles (and reorderable).

Every knob lives in :class:`MaintenanceConfig`; each has a
``REPRO_MAINT_*`` environment override so a deployed server can be
tuned without a restart script, and ``serve`` exposes the two
operators actually reach for (``--maintenance``,
``--maintenance-interval``) as CLI flags.
"""

from __future__ import annotations

import dataclasses
import enum
import os
from typing import Dict, List, Mapping, Optional, Tuple

from repro.maintenance.health import HealthTracker
from repro.storage.relation import Relation
from repro.tiles.tile import Tile


class ActionKind(enum.Enum):
    REORDER_PARTITION = "reorder_partition"
    RECOMPUTE_TILE = "recompute_tile"
    COMPACT_BUFFER = "compact_buffer"
    #: repro.lsm leveled compaction: merge a run of adjacent same-level
    #: tiles into one next-level tile (target = first tile number)
    COMPACT_TILES = "compact_tiles"


@dataclasses.dataclass
class MaintenanceAction:
    """One unit of background work.  ``target`` is the partition index
    (REORDER_PARTITION), the tile number (RECOMPUTE_TILE or
    COMPACT_TILES, where it names the run's first tile) or ``-1``
    (COMPACT_BUFFER)."""

    kind: ActionKind
    table: str
    target: int
    score: float = 0.0

    def key(self) -> Tuple[str, str, int]:
        return (self.table, self.kind.value, self.target)

    def as_dict(self) -> dict:
        return {"kind": self.kind.value, "table": self.table,
                "target": self.target, "score": round(self.score, 4)}

    @classmethod
    def from_dict(cls, raw: dict) -> "MaintenanceAction":
        return cls(ActionKind(raw["kind"]), raw["table"],
                   int(raw["target"]), float(raw.get("score", 0.0)))


def _env(env: Mapping[str, str], key: str, cast, default):
    raw = env.get(key)
    if raw is None or raw == "":
        return default
    try:
        return cast(raw)
    except (TypeError, ValueError):
        return default


def _env_bool(env: Mapping[str, str], key: str, default: bool) -> bool:
    raw = env.get(key)
    if raw is None or raw == "":
        return default
    return raw.strip().lower() not in ("0", "false", "no", "off")


@dataclasses.dataclass
class MaintenanceConfig:
    """Thresholds of the maintenance policy (see DESIGN.md §6d)."""

    #: master switch; a disabled daemon still answers ``status``
    enabled: bool = True
    #: seconds between background cycles
    interval_s: float = 1.0
    #: extracted-fraction floor below which a partition is reordered;
    #: ``None`` uses the relation's own extraction threshold (60 %)
    min_extraction: Optional[float] = None
    #: actions executed per cycle (rate limit)
    max_actions_per_cycle: int = 4
    #: cycles a partition rests after a reorder attempt
    reorg_cooldown_cycles: int = 8
    #: attempts per unchanged partition content — a genuinely
    #: heterogeneous partition is not re-mined forever
    max_reorg_attempts: int = 2
    #: recompute a tile once updates exceed this fraction of its rows
    recompute_update_fraction: float = 0.25
    #: cycles a non-empty insert buffer must sit unchanged before the
    #: daemon seals it
    compact_idle_cycles: int = 2
    #: skip a cycle while at least this many queries are in flight
    backpressure_active_queries: int = 4
    #: partitions smaller than this are never reordered
    min_partition_tiles: int = 2
    #: master switch for REORDER_PARTITION proposals; cluster shards
    #: run with this off because the coordinator's routing depends on
    #: physical row order (the canonical block layout, DESIGN.md §7)
    allow_reordering: bool = True

    @classmethod
    def from_env(cls, env: Optional[Mapping[str, str]] = None,
                 **overrides) -> "MaintenanceConfig":
        """Build a config from ``REPRO_MAINT_*`` variables; keyword
        *overrides* (e.g. from CLI flags) win over the environment."""
        env = os.environ if env is None else env
        fields = {
            "enabled": _env_bool(env, "REPRO_MAINT_ENABLED", True),
            "interval_s": _env(env, "REPRO_MAINT_INTERVAL", float, 1.0),
            "min_extraction": _env(env, "REPRO_MAINT_MIN_EXTRACTION",
                                   float, None),
            "max_actions_per_cycle": _env(env, "REPRO_MAINT_MAX_ACTIONS",
                                          int, 4),
            "reorg_cooldown_cycles": _env(env, "REPRO_MAINT_COOLDOWN",
                                          int, 8),
            "max_reorg_attempts": _env(env, "REPRO_MAINT_MAX_ATTEMPTS",
                                       int, 2),
            "recompute_update_fraction": _env(
                env, "REPRO_MAINT_RECOMPUTE_FRACTION", float, 0.25),
            "compact_idle_cycles": _env(env, "REPRO_MAINT_COMPACT_IDLE",
                                        int, 2),
            "backpressure_active_queries": _env(
                env, "REPRO_MAINT_BACKPRESSURE", int, 4),
            "allow_reordering": _env_bool(env, "REPRO_MAINT_REORDER", True),
        }
        fields.update({key: value for key, value in overrides.items()
                       if value is not None})
        return cls(**fields)


def tile_by_number(relation: Relation, number: int) -> Optional[Tile]:
    """The live tile with header number *number* (or None once it was
    rebuilt/replaced)."""
    for tile in relation.tiles:
        if tile.header.tile_number == number:
            return tile
    return None


class MaintenancePlanner:
    """Health → prioritized action queue.

    The score of a reorder is ``deficit × rows × (1 + fallback_rate)``:
    how far below the threshold the partition sits, weighted by how
    many rows suffer and by how hard queries are currently hitting the
    fallback path.  Recomputations score by update pressure, buffer
    compactions by pending rows; one partition never receives both a
    reorder and a recompute in the same cycle (the reorder rebuilds
    every tile anyway).
    """

    def __init__(self, config: MaintenanceConfig):
        self.config = config
        #: per-table (pending_count_last_seen, idle_cycles) for the
        #: COMPACT_BUFFER idleness detector
        self._buffer_idle: Dict[str, Tuple[int, int]] = {}

    # ------------------------------------------------------------------

    def plan_table(self, name: str, relation: Relation,
                   tracker: HealthTracker) -> List[MaintenanceAction]:
        config = self.config
        actions: List[MaintenanceAction] = []
        if relation.text_rows is not None:
            return actions
        fallback = tracker.refresh_scan_signal()
        min_extraction = (config.min_extraction
                          if config.min_extraction is not None
                          else relation.config.threshold)

        # straggler buffers: a partial buffer that stopped growing
        # holds rows no scan-side tile ever sees sealed
        pending = relation.pending_inserts
        seen, idle = self._buffer_idle.get(name, (0, 0))
        idle = idle + 1 if (pending > 0 and pending == seen) else 0
        self._buffer_idle[name] = (pending, idle)
        if pending > 0 and idle >= config.compact_idle_cycles:
            actions.append(MaintenanceAction(
                ActionKind.COMPACT_BUFFER, name, -1, float(pending)))

        reorderable = (config.allow_reordering
                       and relation.format.uses_local_schemas
                       and not relation.children)
        reorder_partitions = set()
        if reorderable:
            for health in tracker.snapshot():
                if health.tiles < config.min_partition_tiles:
                    continue
                if health.cooldown > 0:
                    continue
                if health.attempts >= config.max_reorg_attempts:
                    continue
                if health.extraction >= min_extraction:
                    continue
                deficit = min_extraction - health.extraction
                score = deficit * max(1, health.rows) * (1.0 + fallback)
                actions.append(MaintenanceAction(
                    ActionKind.REORDER_PARTITION, name,
                    health.partition, score))
                reorder_partitions.add(health.partition)

        if relation.format.extracts_columns:
            partition_size = max(1, relation.config.partition_size)
            for number, updates in sorted(tracker.tile_updates().items()):
                if number // partition_size in reorder_partitions:
                    continue  # the reorder rebuilds this tile anyway
                tile = tile_by_number(relation, number)
                if tile is None or tile.row_count == 0:
                    continue
                if updates < config.recompute_update_fraction * tile.row_count:
                    continue
                actions.append(MaintenanceAction(
                    ActionKind.RECOMPUTE_TILE, name, number,
                    float(updates) * (1.0 + fallback)))

        # repro.lsm leveled compaction: merge runs of adjacent
        # same-level tiles (header-only planning; the relation's own
        # LsmConfig gates it, so shards compact even with reordering
        # off — row order is preserved by the merge)
        lsm_config = getattr(relation, "lsm_config", None)
        if lsm_config is not None and lsm_config.enabled:
            from repro.lsm import plan_compactions

            partition_size = max(1, relation.config.partition_size)
            for candidate in plan_compactions(relation, lsm_config):
                if candidate.start_number // partition_size \
                        in reorder_partitions:
                    continue  # the reorder rebuilds these tiles anyway
                actions.append(MaintenanceAction(
                    ActionKind.COMPACT_TILES, name,
                    candidate.start_number,
                    candidate.score * (1.0 + fallback)))
        return actions

    def plan(self, tables: Mapping[str, Tuple[Relation, HealthTracker]],
             ) -> List[MaintenanceAction]:
        """The cycle's work queue: all tables' candidate actions,
        highest score first, capped at ``max_actions_per_cycle``."""
        actions: List[MaintenanceAction] = []
        for name in sorted(tables):
            relation, tracker = tables[name]
            actions.extend(self.plan_table(name, relation, tracker))
        actions.sort(key=lambda action: (-action.score, action.table,
                                         action.kind.value, action.target))
        return actions[: max(0, self.config.max_actions_per_cycle)]
