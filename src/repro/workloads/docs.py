"""Synthetic stand-ins for the SIMD-JSON benchmark files (Section 6.9).

The paper evaluates the binary formats on eight standardized JSON files
from the SIMD-JSON repository.  Those files are not shippable here, so
each corpus is regenerated synthetically with the structural character
that drives the measurements:

==============  =========================================================
apache_builds   medium-nested build-server objects, many short strings
canada          GeoJSON: enormous arrays of [lon, lat] float pairs
gsoc-2018       organization objects, long text fields, shallow nesting
marine_ik       3D model: deeply nested numeric arrays + matrices
mesh            flat arrays of vertex indices and coordinates
numbers         one big array of doubles
random          randomly shaped objects/arrays/strings, mixed depth
twitter_api     rich tweet objects (statuses array with users/entities)
==============  =========================================================

Each generator returns one top-level document; ``access_paths`` yields
representative deep key paths for the random-access benchmark
(Figure 20).
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List

from repro.core.jsonpath import KeyPath


def apache_builds(seed: int = 3) -> dict:
    rng = random.Random(seed)
    builds = []
    for key in range(120):
        builds.append({
            "name": f"build-{key}",
            "url": f"https://ci.example.org/job/build-{key}/",
            "color": rng.choice(["blue", "red", "yellow", "disabled"]),
            "lastBuild": {
                "number": rng.randint(1, 4000),
                "duration": rng.randint(1000, 10**6),
                "result": rng.choice(["SUCCESS", "FAILURE", "UNSTABLE"]),
                "culprits": [
                    {"fullName": f"dev{rng.randint(1, 40)}"}
                    for _ in range(rng.randint(0, 3))
                ],
            },
        })
    return {"assignedLabels": [{}], "mode": "NORMAL", "jobs": builds}


def canada(seed: int = 4) -> dict:
    rng = random.Random(seed)
    rings = []
    for _ in range(12):
        ring = [[round(rng.uniform(-141.0, -52.0), 6),
                 round(rng.uniform(41.0, 83.0), 6)]
                for _ in range(400)]
        rings.append(ring)
    return {
        "type": "FeatureCollection",
        "features": [{
            "type": "Feature",
            "properties": {"name": "Canada"},
            "geometry": {"type": "Polygon", "coordinates": rings},
        }],
    }


def gsoc_2018(seed: int = 5) -> dict:
    rng = random.Random(seed)
    orgs = {}
    for key in range(80):
        orgs[str(key)] = {
            "@context": "https://schema.org",
            "@type": "SoftwareSourceCode",
            "name": f"Organization {key}",
            "description": " ".join("open source project mentoring "
                                    "students summer code".split()
                                    * rng.randint(2, 6)),
            "license": rng.choice(["Apache-2.0", "MIT", "GPL-3.0"]),
            "programmingLanguage": [
                rng.choice(["python", "c++", "rust", "go", "java"])
                for _ in range(rng.randint(1, 3))
            ],
            "author": {"@type": "Person",
                       "name": f"Mentor {rng.randint(1, 300)}"},
        }
    return orgs


def marine_ik(seed: int = 6) -> dict:
    rng = random.Random(seed)

    def matrix():
        return [round(rng.uniform(-1, 1), 7) for _ in range(16)]

    bones = []
    for key in range(60):
        bones.append({
            "parent": key - 1,
            "name": f"bone_{key}",
            "pos": [round(rng.uniform(-5, 5), 5) for _ in range(3)],
            "rotq": [round(rng.uniform(-1, 1), 6) for _ in range(4)],
        })
    return {
        "metadata": {"version": 4.4, "type": "Object"},
        "geometries": [{
            "uuid": "0A8F2988-626F-411C-BD6A-AC656C4E6878",
            "type": "SkinnedMesh",
            "data": {
                "vertices": [round(rng.uniform(-10, 10), 5)
                             for _ in range(3000)],
                "normals": [round(rng.uniform(-1, 1), 5)
                            for _ in range(3000)],
                "bones": bones,
                "animations": [{
                    "name": "swim",
                    "hierarchy": [{
                        "keys": [{"time": t / 24.0, "rot": matrix()[:4]}
                                 for t in range(24)]
                    } for _ in range(8)],
                }],
            },
        }],
    }


def mesh(seed: int = 7) -> dict:
    rng = random.Random(seed)
    return {
        "batches": [{
            "indexRange": [0, rng.randint(1000, 5000)],
            "usedBones": list(range(rng.randint(4, 16))),
        } for _ in range(24)],
        "positions": [rng.randint(0, 65535) for _ in range(9000)],
        "tex0": [round(rng.uniform(0, 1), 6) for _ in range(6000)],
    }


def numbers(seed: int = 8) -> list:
    rng = random.Random(seed)
    return [round(rng.uniform(-1000.0, 1000.0), 10) for _ in range(10_000)]


def random_doc(seed: int = 9) -> dict:
    rng = random.Random(seed)

    def value(depth: int):
        roll = rng.random()
        if depth >= 4 or roll < 0.35:
            return rng.choice([
                rng.randint(-10**6, 10**6),
                round(rng.uniform(-100, 100), 4),
                "".join(rng.choice("abcdefghij ") for _ in range(
                    rng.randint(3, 24))),
                rng.random() < 0.5,
                None,
            ])
        if roll < 0.65:
            return [value(depth + 1) for _ in range(rng.randint(1, 6))]
        return {f"k{index}": value(depth + 1)
                for index in range(rng.randint(1, 6))}

    return {f"field{index}": value(0) for index in range(200)}


def twitter_api(seed: int = 10) -> dict:
    from repro.workloads.twitter import TwitterGenerator

    generator = TwitterGenerator(num_tweets=150, seed=seed,
                                 delete_fraction=0.0)
    return {"statuses": generator.stream(),
            "search_metadata": {"completed_in": 0.087, "count": 150}}


CORPORA: Dict[str, Callable[[], object]] = {
    "apache": apache_builds,
    "canada": canada,
    "gsoc-2018": gsoc_2018,
    "marine_ik": marine_ik,
    "mesh": mesh,
    "numbers": numbers,
    "random": random_doc,
    "twitter_api": twitter_api,
}

#: representative nested access paths per corpus (Figure 20's random
#: accesses with different nesting levels)
ACCESS_PATHS: Dict[str, List[KeyPath]] = {
    "apache": [KeyPath.parse("jobs[5].lastBuild.result"),
               KeyPath.parse("jobs[40].name"),
               KeyPath.parse("jobs[99].lastBuild.number")],
    "canada": [KeyPath.parse("features[0].geometry.coordinates[3][100][1]"),
               KeyPath.parse("features[0].properties.name")],
    "gsoc-2018": [KeyPath.parse("17.name"), KeyPath.parse("42.author.name"),
                  KeyPath.parse("63.license")],
    "marine_ik": [
        KeyPath.parse("geometries[0].data.vertices[1500]"),
        KeyPath.parse("geometries[0].data.bones[30].pos[1]"),
        KeyPath.parse("geometries[0].data.animations[0].hierarchy[3]"
                      ".keys[10].time"),
    ],
    "mesh": [KeyPath.parse("positions[4000]"),
             KeyPath.parse("batches[10].indexRange[1]")],
    "numbers": [KeyPath.parse("[5000]"), KeyPath.parse("[9999]")],
    "random": [KeyPath.parse("field50"), KeyPath.parse("field100"),
               KeyPath.parse("field199")],
    "twitter_api": [KeyPath.parse("statuses[50].user.screen_name"),
                    KeyPath.parse("statuses[120].text"),
                    KeyPath.parse("search_metadata.count")],
}
