"""Twitter-like tweet stream (Sections 2.2, 6.3).

The generator reproduces the structural properties the paper leans on:

* the historical field timeline — replies (2007), hashtags (2007),
  retweets (2009), geo tags (2010) — so a "changing" stream (Table 4)
  starts with minimal 2006-style tweets and grows richer over time,
  while the default stream is all-modern (a June-2020 excerpt);
* interleaved *delete* records with a completely different structure
  (``{"delete": {"status": ...}}``), globally infrequent but locally
  minable after reordering;
* high-cardinality ``entities.hashtags`` / ``entities.user_mentions``
  arrays for the Tiles-* experiments.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from repro.core.jsonpath import KeyPath
from repro.database import Database
from repro.storage.formats import StorageFormat
from repro.tiles.extractor import ExtractionConfig

LANGS = ["en", "ja", "es", "pt", "ar", "ko", "fr", "de"]
SOURCES = ["Twitter for iPhone", "Twitter for Android", "Twitter Web App",
           "TweetDeck"]
HASHTAGS = ["#COVID", "#News", "#Music", "#Sports", "#Gaming", "#Art",
            "#Crypto", "#Food", "#Travel", "#Science"]
MENTIONS = ["ladygaga", "katyperry", "BarackObama", "nasa", "nytimes",
            "elonmusk", "BBCBreaking", "CNN"]
_WORDS = ("breaking just saw this amazing thread about the new update "
          "cannot believe what happened today stream starts soon follow "
          "for more check out our latest drop").split()

_MONTHS = ["Jan", "Feb", "Mar", "Apr", "May", "Jun",
           "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"]

#: feature introduction years (Section 2.2)
FEATURE_YEARS = {"reply": 2007, "hashtags": 2007, "retweet": 2009,
                 "geo": 2010}

ARRAY_PATHS = [KeyPath.parse("entities.hashtags"),
               KeyPath.parse("entities.user_mentions")]


def _created_at(rng: random.Random, year: int) -> str:
    month = rng.randint(1, 12)
    return (f"{rng.choice(['Mon','Tue','Wed','Thu','Fri','Sat','Sun'])} "
            f"{_MONTHS[month - 1]} {rng.randint(1, 28):02d} "
            f"{rng.randint(0, 23):02d}:{rng.randint(0, 59):02d}:"
            f"{rng.randint(0, 59):02d} +0000 {year}")


class TwitterGenerator:
    def __init__(self, num_tweets: int = 2000, seed: int = 11,
                 evolving: bool = False, delete_fraction: float = 0.08):
        self.num_tweets = num_tweets
        self.seed = seed
        #: evolving=True replays the 2006-2020 timeline ("Changing");
        #: evolving=False emits uniform modern tweets (2020 excerpt)
        self.evolving = evolving
        self.delete_fraction = delete_fraction

    def _year_of(self, index: int) -> int:
        if not self.evolving:
            return 2020
        return 2006 + round((index / max(1, self.num_tweets - 1)) * 14)

    def _tweet(self, rng: random.Random, index: int) -> dict:
        year = self._year_of(index)
        user_id = rng.randint(1, max(10, self.num_tweets // 20))
        doc = {
            "id": 10**15 + index,
            "created_at": _created_at(rng, year),
            "text": " ".join(rng.choice(_WORDS)
                             for _ in range(rng.randint(8, 40))),
            "source": rng.choice(SOURCES),
            "lang": rng.choice(LANGS),
            "user": {
                "id": user_id,
                "name": f"user-{user_id}",
                "screen_name": f"user{user_id}",
                "followers_count": int(rng.paretovariate(1.2) * 50),
                "friends_count": rng.randint(0, 2000),
                "verified": rng.random() < 0.03,
            },
            "favorite_count": rng.randint(0, 500),
            "retweet_count": rng.randint(0, 800),
        }
        if year >= FEATURE_YEARS["reply"] and rng.random() < 0.3:
            doc["in_reply_to_status_id"] = 10**15 + rng.randrange(
                max(1, index))
            doc["in_reply_to_user_id"] = rng.randint(
                1, max(10, self.num_tweets // 20))
        if year >= FEATURE_YEARS["hashtags"]:
            entities = {"urls": []}
            entities["hashtags"] = [
                {"text": rng.choice(HASHTAGS),
                 "indices": [0, 5]}
                for _ in range(rng.randint(0, 6))
            ]
            entities["user_mentions"] = [
                {"screen_name": rng.choice(MENTIONS),
                 "id": rng.randint(1, 10**6)}
                for _ in range(rng.randint(0, 4))
            ]
            doc["entities"] = entities
        if year >= FEATURE_YEARS["retweet"] and rng.random() < 0.2:
            doc["retweeted_status"] = {
                "id": 10**14 + rng.randrange(10**6),
                "user": {"id": rng.randint(1, 10**6),
                         "screen_name": f"rt{rng.randint(1, 999)}"},
                "retweet_count": rng.randint(0, 10**4),
            }
        if year >= FEATURE_YEARS["geo"] and rng.random() < 0.1:
            doc["geo"] = {
                "coordinates": [round(rng.uniform(-90, 90), 6),
                                round(rng.uniform(-180, 180), 6)],
                "type": "Point",
            }
        return doc

    def _delete(self, rng: random.Random, index: int) -> dict:
        return {
            "delete": {
                "status": {
                    "id": 10**15 + rng.randrange(max(1, index + 1)),
                    "user_id": rng.randint(1, max(10, self.num_tweets // 20)),
                },
                "timestamp_ms": str(1591000000000 + index),
            }
        }

    def stream(self) -> List[dict]:
        """Tweets with interleaved delete records, insertion-ordered."""
        rng = random.Random(self.seed)
        documents = []
        for index in range(self.num_tweets):
            if rng.random() < self.delete_fraction:
                documents.append(self._delete(rng, index))
            documents.append(self._tweet(rng, index))
        return documents


#: Queries modeled on Section 6.3: influential users, deletions,
#: mention lookup, hashtag lookup, per-language stats.
TWITTER_QUERIES: Dict[int, str] = {
    1: """
select t.data->'user'->>'screen_name' as screen_name,
       t.data->'user'->>'followers_count'::int as followers,
       count(*) as tweets
from tweets t
where t.data->'user'->>'followers_count'::int > 1000
group by t.data->'user'->>'screen_name',
         t.data->'user'->>'followers_count'::int
order by followers desc, screen_name
limit 20
""",
    2: """
select t.data->'delete'->'status'->>'user_id'::int as user_id,
       count(*) as deleted
from tweets t
where t.data->'delete'->'status'->>'id' is not null
group by t.data->'delete'->'status'->>'user_id'::int
order by deleted desc, user_id
limit 20
""",
    3: """
select count(*) as mentions
from tweets t
where json_contains(t.data->'entities'->'user_mentions',
                    'screen_name', 'ladygaga')
""",
    4: """
select count(*) as tagged
from tweets t
where json_contains(t.data->'entities'->'hashtags', 'text', '#COVID')
""",
    5: """
select t.data->>'lang' as lang, count(*) as tweets,
       avg(t.data->>'retweet_count'::int) as avg_retweets
from tweets t
where t.data->>'retweet_count' is not null
group by t.data->>'lang'
order by tweets desc, lang
""",
}

#: Tiles-* variants of Q3/Q4: join the extracted array child relations
#: instead of traversing the arrays per tuple (Section 6.3).
TWITTER_QUERIES_STAR: Dict[int, str] = dict(TWITTER_QUERIES)
TWITTER_QUERIES_STAR[3] = """
select count(distinct m.data->>'_parent_row'::int) as mentions
from tweets__entities_user_mentions m
where m.data->>'screen_name' = 'ladygaga'
"""
TWITTER_QUERIES_STAR[4] = """
select count(distinct h.data->>'_parent_row'::int) as tagged
from tweets__entities_hashtags h
where h.data->>'text' = '#COVID'
"""


def make_database(num_tweets: int = 2000,
                  storage_format: StorageFormat = StorageFormat.TILES,
                  config: Optional[ExtractionConfig] = None,
                  evolving: bool = False,
                  seed: int = 11,
                  num_workers: int = 1) -> Database:
    """Load the tweet stream as the ``tweets`` table (plus array child
    tables for TILES_STAR)."""
    generator = TwitterGenerator(num_tweets, seed, evolving)
    db = Database(storage_format, config)
    kwargs = {}
    if storage_format == StorageFormat.TILES_STAR:
        kwargs["array_paths"] = ARRAY_PATHS
    db.load_table("tweets", generator.stream(), storage_format, config,
                  num_workers=num_workers, **kwargs)
    return db
