"""HackerNews-like news items (Figure 3).

Each item type has its own structure — stories carry URLs, polls carry
descriptors, poll options reference their poll, comments reference a
parent — and the stream interleaves them, which is exactly the
low-spatial-locality workload that motivates tuple reordering
(Section 3.2).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.database import Database
from repro.storage.formats import StorageFormat
from repro.tiles.extractor import ExtractionConfig

_TITLES = ("Show HN My Weekend Project", "Why Databases Matter",
           "The State of JSON", "Ask HN Favorite Paper",
           "Postmortem of an Outage")
_TEXTS = ("this is really interesting", "I disagree with the premise",
          "great write-up thanks", "can you share benchmarks",
          "we saw the same issue in production")

ITEM_TYPES = ("story", "poll", "pollopt", "comment", "job")


def _item(rng: random.Random, key: int, kind: str) -> dict:
    date = (f"{rng.randint(2015, 2020)}-{rng.randint(1, 12):02d}-"
            f"{rng.randint(1, 28):02d}")
    base = {"id": key, "date": date, "type": kind,
            "by": f"user{rng.randint(1, 500)}"}
    if kind == "story":
        base.update({
            "score": rng.randint(0, 500),
            "descendants": rng.randint(0, 300),
            "title": rng.choice(_TITLES),
            "url": f"https://example.com/{key}",
        })
    elif kind == "poll":
        base.update({
            "score": rng.randint(0, 200),
            "descendants": rng.randint(0, 100),
            "title": rng.choice(_TITLES),
            "parts": [key * 10 + slot for slot in range(rng.randint(2, 4))],
        })
    elif kind == "pollopt":
        base.update({
            "score": rng.randint(0, 80),
            "poll": max(1, key - rng.randint(1, 20)),
            "title": rng.choice(_TEXTS),
        })
    elif kind == "comment":
        base.update({
            "parent": max(1, key - rng.randint(1, 50)),
            "text": rng.choice(_TEXTS),
            "kids": [key * 10 + slot for slot in range(rng.randint(0, 3))],
        })
    else:  # job
        base.update({
            "score": rng.randint(0, 50),
            "title": "Hiring: " + rng.choice(_TITLES),
            "url": f"https://jobs.example.com/{key}",
        })
    return base


def generate_items(num_items: int = 2000, seed: int = 5,
                   weights: Optional[Dict[str, float]] = None) -> List[dict]:
    """An interleaved item stream; default mix is comment-heavy like the
    real firehose."""
    weights = weights or {"story": 0.25, "poll": 0.05, "pollopt": 0.1,
                          "comment": 0.5, "job": 0.1}
    rng = random.Random(seed)
    kinds = list(weights)
    probabilities = [weights[kind] for kind in kinds]
    return [
        _item(rng, key + 1, rng.choices(kinds, probabilities)[0])
        for key in range(num_items)
    ]


HACKERNEWS_QUERIES: Dict[int, str] = {
    # top stories by score
    1: """
select i.data->>'title' as title, max(i.data->>'score'::int) as score
from items i
where i.data->>'type' = 'story'
group by i.data->>'title'
order by score desc
limit 10
""",
    # comment counts per parent
    2: """
select i.data->>'parent'::int as parent, count(*) as replies
from items i
where i.data->>'type' = 'comment'
group by i.data->>'parent'::int
order by replies desc, parent
limit 10
""",
    # poll options joined to their polls
    3: """
select p.data->>'title' as poll_title, count(*) as options
from items p, items o
where o.data->>'type' = 'pollopt'
  and p.data->>'type' = 'poll'
  and o.data->>'poll'::int = p.data->>'id'::int
group by p.data->>'title'
order by options desc, poll_title
""",
}


def make_database(num_items: int = 2000,
                  storage_format: StorageFormat = StorageFormat.TILES,
                  config: Optional[ExtractionConfig] = None,
                  seed: int = 5) -> Database:
    db = Database(storage_format, config)
    db.load_table("items", generate_items(num_items, seed), storage_format,
                  config)
    return db
