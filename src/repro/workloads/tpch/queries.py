"""The 22 TPC-H queries, JSONized (Section 6.1).

Every table reference reads the JSON document column with
PostgreSQL-style access operators, exactly like the paper's example
(Figure 5).  In *combined* mode all eight table names resolve to the
same physical relation; key-presence semantics (absent key -> NULL ->
predicate false) plus tile skipping make each alias select its
document type.

Where combined mode needs an explicit key-presence guard (Q13's
preserved left-join side has no other predicate on customer keys), the
guard is part of the query; it is harmless in split-table mode.
"""

TPCH_QUERIES = {
    1: """
select l.data->>'l_returnflag' as l_returnflag,
       l.data->>'l_linestatus' as l_linestatus,
       sum(l.data->>'l_quantity'::int) as sum_qty,
       sum(l.data->>'l_extendedprice'::decimal) as sum_base_price,
       sum(l.data->>'l_extendedprice'::decimal
           * (1 - l.data->>'l_discount'::decimal)) as sum_disc_price,
       sum(l.data->>'l_extendedprice'::decimal
           * (1 - l.data->>'l_discount'::decimal)
           * (1 + l.data->>'l_tax'::decimal)) as sum_charge,
       avg(l.data->>'l_quantity'::int) as avg_qty,
       avg(l.data->>'l_extendedprice'::decimal) as avg_price,
       avg(l.data->>'l_discount'::decimal) as avg_disc,
       count(*) as count_order
from lineitem l
where l.data->>'l_shipdate'::date <= date '1998-12-01' - interval '90' day
group by l.data->>'l_returnflag', l.data->>'l_linestatus'
order by l_returnflag, l_linestatus
""",
    2: """
select s.data->>'s_acctbal'::decimal as s_acctbal,
       s.data->>'s_name' as s_name,
       n.data->>'n_name' as n_name,
       p.data->>'p_partkey'::int as p_partkey,
       p.data->>'p_mfgr' as p_mfgr,
       s.data->>'s_address' as s_address,
       s.data->>'s_phone' as s_phone,
       s.data->>'s_comment' as s_comment
from part p, supplier s, partsupp ps, nation n, region r
where p.data->>'p_partkey'::int = ps.data->>'ps_partkey'::int
  and s.data->>'s_suppkey'::int = ps.data->>'ps_suppkey'::int
  and p.data->>'p_size'::int = 15
  and p.data->>'p_type' like '%BRASS'
  and s.data->>'s_nationkey'::int = n.data->>'n_nationkey'::int
  and n.data->>'n_regionkey'::int = r.data->>'r_regionkey'::int
  and r.data->>'r_name' = 'EUROPE'
  and ps.data->>'ps_supplycost'::decimal = (
      select min(ps2.data->>'ps_supplycost'::decimal)
      from partsupp ps2, supplier s2, nation n2, region r2
      where p.data->>'p_partkey'::int = ps2.data->>'ps_partkey'::int
        and s2.data->>'s_suppkey'::int = ps2.data->>'ps_suppkey'::int
        and s2.data->>'s_nationkey'::int = n2.data->>'n_nationkey'::int
        and n2.data->>'n_regionkey'::int = r2.data->>'r_regionkey'::int
        and r2.data->>'r_name' = 'EUROPE')
order by s_acctbal desc, n_name, s_name, p_partkey
limit 100
""",
    3: """
select l.data->>'l_orderkey'::int as l_orderkey,
       sum(l.data->>'l_extendedprice'::decimal
           * (1 - l.data->>'l_discount'::decimal)) as revenue,
       o.data->>'o_orderdate'::date as o_orderdate,
       o.data->>'o_shippriority'::int as o_shippriority
from customer c, orders o, lineitem l
where c.data->>'c_mktsegment' = 'BUILDING'
  and c.data->>'c_custkey'::int = o.data->>'o_custkey'::int
  and l.data->>'l_orderkey'::int = o.data->>'o_orderkey'::int
  and o.data->>'o_orderdate'::date < date '1995-03-15'
  and l.data->>'l_shipdate'::date > date '1995-03-15'
group by l.data->>'l_orderkey'::int, o.data->>'o_orderdate'::date,
         o.data->>'o_shippriority'::int
order by revenue desc, o_orderdate
limit 10
""",
    4: """
select o.data->>'o_orderpriority' as o_orderpriority,
       count(*) as order_count
from orders o
where o.data->>'o_orderdate'::date >= date '1993-07-01'
  and o.data->>'o_orderdate'::date < date '1993-07-01' + interval '3' month
  and exists (
      select l.data->>'l_orderkey'
      from lineitem l
      where l.data->>'l_orderkey'::int = o.data->>'o_orderkey'::int
        and l.data->>'l_commitdate'::date < l.data->>'l_receiptdate'::date)
group by o.data->>'o_orderpriority'
order by o_orderpriority
""",
    5: """
select n.data->>'n_name' as n_name,
       sum(l.data->>'l_extendedprice'::decimal
           * (1 - l.data->>'l_discount'::decimal)) as revenue
from customer c, orders o, lineitem l, supplier s, nation n, region r
where c.data->>'c_custkey'::int = o.data->>'o_custkey'::int
  and l.data->>'l_orderkey'::int = o.data->>'o_orderkey'::int
  and l.data->>'l_suppkey'::int = s.data->>'s_suppkey'::int
  and c.data->>'c_nationkey'::int = s.data->>'s_nationkey'::int
  and s.data->>'s_nationkey'::int = n.data->>'n_nationkey'::int
  and n.data->>'n_regionkey'::int = r.data->>'r_regionkey'::int
  and r.data->>'r_name' = 'ASIA'
  and o.data->>'o_orderdate'::date >= date '1994-01-01'
  and o.data->>'o_orderdate'::date < date '1994-01-01' + interval '1' year
group by n.data->>'n_name'
order by revenue desc
""",
    6: """
select sum(l.data->>'l_extendedprice'::decimal
           * l.data->>'l_discount'::decimal) as revenue
from lineitem l
where l.data->>'l_shipdate'::date >= date '1994-01-01'
  and l.data->>'l_shipdate'::date < date '1994-01-01' + interval '1' year
  and l.data->>'l_discount'::decimal between 0.05 and 0.07
  and l.data->>'l_quantity'::int < 24
""",
    7: """
select shipping.supp_nation as supp_nation,
       shipping.cust_nation as cust_nation,
       shipping.l_year as l_year,
       sum(shipping.volume) as revenue
from (
    select n1.data->>'n_name' as supp_nation,
           n2.data->>'n_name' as cust_nation,
           extract(year from l.data->>'l_shipdate'::date) as l_year,
           l.data->>'l_extendedprice'::decimal
             * (1 - l.data->>'l_discount'::decimal) as volume
    from supplier s, lineitem l, orders o, customer c, nation n1, nation n2
    where s.data->>'s_suppkey'::int = l.data->>'l_suppkey'::int
      and o.data->>'o_orderkey'::int = l.data->>'l_orderkey'::int
      and c.data->>'c_custkey'::int = o.data->>'o_custkey'::int
      and s.data->>'s_nationkey'::int = n1.data->>'n_nationkey'::int
      and c.data->>'c_nationkey'::int = n2.data->>'n_nationkey'::int
      and ((n1.data->>'n_name' = 'FRANCE' and n2.data->>'n_name' = 'GERMANY')
        or (n1.data->>'n_name' = 'GERMANY' and n2.data->>'n_name' = 'FRANCE'))
      and l.data->>'l_shipdate'::date between date '1995-01-01'
                                          and date '1996-12-31'
) as shipping
group by shipping.supp_nation, shipping.cust_nation, shipping.l_year
order by supp_nation, cust_nation, l_year
""",
    8: """
select all_nations.o_year as o_year,
       sum(case when all_nations.nation = 'BRAZIL'
                then all_nations.volume else 0 end)
         / sum(all_nations.volume) as mkt_share
from (
    select extract(year from o.data->>'o_orderdate'::date) as o_year,
           l.data->>'l_extendedprice'::decimal
             * (1 - l.data->>'l_discount'::decimal) as volume,
           n2.data->>'n_name' as nation
    from part p, supplier s, lineitem l, orders o, customer c,
         nation n1, nation n2, region r
    where p.data->>'p_partkey'::int = l.data->>'l_partkey'::int
      and s.data->>'s_suppkey'::int = l.data->>'l_suppkey'::int
      and l.data->>'l_orderkey'::int = o.data->>'o_orderkey'::int
      and o.data->>'o_custkey'::int = c.data->>'c_custkey'::int
      and c.data->>'c_nationkey'::int = n1.data->>'n_nationkey'::int
      and n1.data->>'n_regionkey'::int = r.data->>'r_regionkey'::int
      and r.data->>'r_name' = 'AMERICA'
      and s.data->>'s_nationkey'::int = n2.data->>'n_nationkey'::int
      and o.data->>'o_orderdate'::date between date '1995-01-01'
                                           and date '1996-12-31'
      and p.data->>'p_type' = 'ECONOMY ANODIZED STEEL'
) as all_nations
group by all_nations.o_year
order by o_year
""",
    9: """
select profit.nation as nation, profit.o_year as o_year,
       sum(profit.amount) as sum_profit
from (
    select n.data->>'n_name' as nation,
           extract(year from o.data->>'o_orderdate'::date) as o_year,
           l.data->>'l_extendedprice'::decimal
             * (1 - l.data->>'l_discount'::decimal)
             - ps.data->>'ps_supplycost'::decimal
               * l.data->>'l_quantity'::int as amount
    from part p, supplier s, lineitem l, partsupp ps, orders o, nation n
    where s.data->>'s_suppkey'::int = l.data->>'l_suppkey'::int
      and ps.data->>'ps_suppkey'::int = l.data->>'l_suppkey'::int
      and ps.data->>'ps_partkey'::int = l.data->>'l_partkey'::int
      and p.data->>'p_partkey'::int = l.data->>'l_partkey'::int
      and o.data->>'o_orderkey'::int = l.data->>'l_orderkey'::int
      and s.data->>'s_nationkey'::int = n.data->>'n_nationkey'::int
      and p.data->>'p_name' like '%green%'
) as profit
group by profit.nation, profit.o_year
order by nation, o_year desc
""",
    10: """
select c.data->>'c_custkey'::int as c_custkey,
       c.data->>'c_name' as c_name,
       sum(l.data->>'l_extendedprice'::decimal
           * (1 - l.data->>'l_discount'::decimal)) as revenue,
       c.data->>'c_acctbal'::decimal as c_acctbal,
       n.data->>'n_name' as n_name,
       c.data->>'c_address' as c_address,
       c.data->>'c_phone' as c_phone,
       c.data->>'c_comment' as c_comment
from customer c, orders o, lineitem l, nation n
where c.data->>'c_custkey'::int = o.data->>'o_custkey'::int
  and l.data->>'l_orderkey'::int = o.data->>'o_orderkey'::int
  and o.data->>'o_orderdate'::date >= date '1993-10-01'
  and o.data->>'o_orderdate'::date < date '1993-10-01' + interval '3' month
  and l.data->>'l_returnflag' = 'R'
  and c.data->>'c_nationkey'::int = n.data->>'n_nationkey'::int
group by c.data->>'c_custkey'::int, c.data->>'c_name',
         c.data->>'c_acctbal'::decimal, c.data->>'c_phone',
         n.data->>'n_name', c.data->>'c_address', c.data->>'c_comment'
order by revenue desc
limit 20
""",
    11: """
select ps.data->>'ps_partkey'::int as ps_partkey,
       sum(ps.data->>'ps_supplycost'::decimal
           * ps.data->>'ps_availqty'::int) as value
from partsupp ps, supplier s, nation n
where ps.data->>'ps_suppkey'::int = s.data->>'s_suppkey'::int
  and s.data->>'s_nationkey'::int = n.data->>'n_nationkey'::int
  and n.data->>'n_name' = 'GERMANY'
group by ps.data->>'ps_partkey'::int
having sum(ps.data->>'ps_supplycost'::decimal
           * ps.data->>'ps_availqty'::int) > (
    select sum(ps2.data->>'ps_supplycost'::decimal
               * ps2.data->>'ps_availqty'::int) * 0.0001
    from partsupp ps2, supplier s2, nation n2
    where ps2.data->>'ps_suppkey'::int = s2.data->>'s_suppkey'::int
      and s2.data->>'s_nationkey'::int = n2.data->>'n_nationkey'::int
      and n2.data->>'n_name' = 'GERMANY')
order by value desc
""",
    12: """
select l.data->>'l_shipmode' as l_shipmode,
       sum(case when o.data->>'o_orderpriority' = '1-URGENT'
                  or o.data->>'o_orderpriority' = '2-HIGH'
                then 1 else 0 end) as high_line_count,
       sum(case when o.data->>'o_orderpriority' <> '1-URGENT'
                 and o.data->>'o_orderpriority' <> '2-HIGH'
                then 1 else 0 end) as low_line_count
from orders o, lineitem l
where o.data->>'o_orderkey'::int = l.data->>'l_orderkey'::int
  and l.data->>'l_shipmode' in ('MAIL', 'SHIP')
  and l.data->>'l_commitdate'::date < l.data->>'l_receiptdate'::date
  and l.data->>'l_shipdate'::date < l.data->>'l_commitdate'::date
  and l.data->>'l_receiptdate'::date >= date '1994-01-01'
  and l.data->>'l_receiptdate'::date < date '1994-01-01' + interval '1' year
group by l.data->>'l_shipmode'
order by l_shipmode
""",
    13: """
select c_orders.c_count as c_count, count(*) as custdist
from (
    select c.data->>'c_custkey'::int as c_custkey,
           count(o.data->>'o_orderkey'::int) as c_count
    from customer c left join orders o
      on c.data->>'c_custkey'::int = o.data->>'o_custkey'::int
     and o.data->>'o_comment' not like '%special%requests%'
    where c.data->>'c_custkey' is not null
    group by c.data->>'c_custkey'::int
) as c_orders
group by c_orders.c_count
order by custdist desc, c_count desc
""",
    14: """
select 100.00 * sum(case when p.data->>'p_type' like 'PROMO%'
                         then l.data->>'l_extendedprice'::decimal
                              * (1 - l.data->>'l_discount'::decimal)
                         else 0 end)
       / sum(l.data->>'l_extendedprice'::decimal
             * (1 - l.data->>'l_discount'::decimal)) as promo_revenue
from lineitem l, part p
where l.data->>'l_partkey'::int = p.data->>'p_partkey'::int
  and l.data->>'l_shipdate'::date >= date '1995-09-01'
  and l.data->>'l_shipdate'::date < date '1995-09-01' + interval '1' month
""",
    15: """
with revenue as (
    select l.data->>'l_suppkey'::int as supplier_no,
           sum(l.data->>'l_extendedprice'::decimal
               * (1 - l.data->>'l_discount'::decimal)) as total_revenue
    from lineitem l
    where l.data->>'l_shipdate'::date >= date '1996-01-01'
      and l.data->>'l_shipdate'::date < date '1996-01-01' + interval '3' month
    group by l.data->>'l_suppkey'::int
)
select s.data->>'s_suppkey'::int as s_suppkey,
       s.data->>'s_name' as s_name,
       s.data->>'s_address' as s_address,
       s.data->>'s_phone' as s_phone,
       r.total_revenue as total_revenue
from supplier s, revenue r
where s.data->>'s_suppkey'::int = r.supplier_no
  and r.total_revenue = (select max(r2.total_revenue) from revenue r2)
order by s_suppkey
""",
    16: """
select p.data->>'p_brand' as p_brand,
       p.data->>'p_type' as p_type,
       p.data->>'p_size'::int as p_size,
       count(distinct ps.data->>'ps_suppkey'::int) as supplier_cnt
from partsupp ps, part p
where p.data->>'p_partkey'::int = ps.data->>'ps_partkey'::int
  and p.data->>'p_brand' <> 'Brand#45'
  and p.data->>'p_type' not like 'MEDIUM POLISHED%'
  and p.data->>'p_size'::int in (49, 14, 23, 45, 19, 3, 36, 9)
  and ps.data->>'ps_suppkey'::int not in (
      select s.data->>'s_suppkey'::int as sk
      from supplier s
      where s.data->>'s_comment' like '%Customer%Complaints%')
group by p.data->>'p_brand', p.data->>'p_type', p.data->>'p_size'::int
order by supplier_cnt desc, p_brand, p_type, p_size
""",
    17: """
select sum(l.data->>'l_extendedprice'::decimal) / 7.0 as avg_yearly
from lineitem l, part p
where p.data->>'p_partkey'::int = l.data->>'l_partkey'::int
  and p.data->>'p_brand' = 'Brand#23'
  and p.data->>'p_container' = 'MED BOX'
  and l.data->>'l_quantity'::int < (
      select 0.2 * avg(l2.data->>'l_quantity'::int)
      from lineitem l2
      where l2.data->>'l_partkey'::int = p.data->>'p_partkey'::int)
""",
    18: """
select c.data->>'c_name' as c_name,
       c.data->>'c_custkey'::int as c_custkey,
       o.data->>'o_orderkey'::int as o_orderkey,
       o.data->>'o_orderdate'::date as o_orderdate,
       o.data->>'o_totalprice'::decimal as o_totalprice,
       sum(l.data->>'l_quantity'::int) as total_qty
from customer c, orders o, lineitem l
where o.data->>'o_orderkey'::int in (
      select l2.data->>'l_orderkey'::int as lok
      from lineitem l2
      group by l2.data->>'l_orderkey'::int
      having sum(l2.data->>'l_quantity'::int) > 300)
  and c.data->>'c_custkey'::int = o.data->>'o_custkey'::int
  and o.data->>'o_orderkey'::int = l.data->>'l_orderkey'::int
group by c.data->>'c_name', c.data->>'c_custkey'::int,
         o.data->>'o_orderkey'::int, o.data->>'o_orderdate'::date,
         o.data->>'o_totalprice'::decimal
order by o_totalprice desc, o_orderdate
limit 100
""",
    19: """
select sum(l.data->>'l_extendedprice'::decimal
           * (1 - l.data->>'l_discount'::decimal)) as revenue
from lineitem l, part p
where p.data->>'p_partkey'::int = l.data->>'l_partkey'::int
  and ((p.data->>'p_brand' = 'Brand#12'
        and p.data->>'p_container' in ('SM CASE', 'SM BOX', 'SM PACK', 'SM PKG')
        and l.data->>'l_quantity'::int between 1 and 11
        and p.data->>'p_size'::int between 1 and 5
        and l.data->>'l_shipmode' in ('AIR', 'REG AIR')
        and l.data->>'l_shipinstruct' = 'DELIVER IN PERSON')
    or (p.data->>'p_brand' = 'Brand#23'
        and p.data->>'p_container' in ('MED BAG', 'MED BOX', 'MED PKG', 'MED PACK')
        and l.data->>'l_quantity'::int between 10 and 20
        and p.data->>'p_size'::int between 1 and 10
        and l.data->>'l_shipmode' in ('AIR', 'REG AIR')
        and l.data->>'l_shipinstruct' = 'DELIVER IN PERSON')
    or (p.data->>'p_brand' = 'Brand#34'
        and p.data->>'p_container' in ('LG CASE', 'LG BOX', 'LG PACK', 'LG PKG')
        and l.data->>'l_quantity'::int between 20 and 30
        and p.data->>'p_size'::int between 1 and 15
        and l.data->>'l_shipmode' in ('AIR', 'REG AIR')
        and l.data->>'l_shipinstruct' = 'DELIVER IN PERSON'))
""",
    20: """
select s.data->>'s_name' as s_name, s.data->>'s_address' as s_address
from supplier s, nation n
where s.data->>'s_suppkey'::int in (
      select ps.data->>'ps_suppkey'::int as pssupp
      from partsupp ps
      where ps.data->>'ps_partkey'::int in (
            select p.data->>'p_partkey'::int as pk
            from part p
            where p.data->>'p_name' like 'forest%')
        and ps.data->>'ps_availqty'::int > (
            select 0.5 * sum(l.data->>'l_quantity'::int)
            from lineitem l
            where l.data->>'l_partkey'::int = ps.data->>'ps_partkey'::int
              and l.data->>'l_suppkey'::int = ps.data->>'ps_suppkey'::int
              and l.data->>'l_shipdate'::date >= date '1994-01-01'
              and l.data->>'l_shipdate'::date <
                  date '1994-01-01' + interval '1' year))
  and s.data->>'s_nationkey'::int = n.data->>'n_nationkey'::int
  and n.data->>'n_name' = 'CANADA'
order by s_name
""",
    21: """
select s.data->>'s_name' as s_name, count(*) as numwait
from supplier s, lineitem l1, orders o, nation n
where s.data->>'s_suppkey'::int = l1.data->>'l_suppkey'::int
  and o.data->>'o_orderkey'::int = l1.data->>'l_orderkey'::int
  and o.data->>'o_orderstatus' = 'F'
  and l1.data->>'l_receiptdate'::date > l1.data->>'l_commitdate'::date
  and exists (
      select l2.data->>'l_orderkey'
      from lineitem l2
      where l2.data->>'l_orderkey'::int = l1.data->>'l_orderkey'::int
        and l2.data->>'l_suppkey'::int <> l1.data->>'l_suppkey'::int)
  and not exists (
      select l3.data->>'l_orderkey'
      from lineitem l3
      where l3.data->>'l_orderkey'::int = l1.data->>'l_orderkey'::int
        and l3.data->>'l_suppkey'::int <> l1.data->>'l_suppkey'::int
        and l3.data->>'l_receiptdate'::date > l3.data->>'l_commitdate'::date)
  and s.data->>'s_nationkey'::int = n.data->>'n_nationkey'::int
  and n.data->>'n_name' = 'SAUDI ARABIA'
group by s.data->>'s_name'
order by numwait desc, s_name
limit 100
""",
    22: """
select custsale.cntrycode as cntrycode, count(*) as numcust,
       sum(custsale.c_acctbal) as totacctbal
from (
    select substring(c.data->>'c_phone' from 1 for 2) as cntrycode,
           c.data->>'c_acctbal'::decimal as c_acctbal
    from customer c
    where substring(c.data->>'c_phone' from 1 for 2)
          in ('13', '31', '23', '29', '30', '18', '17')
      and c.data->>'c_acctbal'::decimal > (
          select avg(c2.data->>'c_acctbal'::decimal)
          from customer c2
          where c2.data->>'c_acctbal'::decimal > 0.00
            and substring(c2.data->>'c_phone' from 1 for 2)
                in ('13', '31', '23', '29', '30', '18', '17'))
      and not exists (
          select o.data->>'o_orderkey'
          from orders o
          where o.data->>'o_custkey'::int = c.data->>'c_custkey'::int)
) as custsale
group by custsale.cntrycode
order by cntrycode
""",
}

#: Queries whose chokepoints the paper discusses in detail (Section 6.1)
HIGHLIGHTED_QUERIES = (1, 3, 18)
