"""Deterministic TPC-H-style data generator, JSONized (Section 6.1).

The paper converts TPC-H so that every row of every table becomes a
JSON object whose keys are the column names, then combines the eight
tables into a *single* relation to simulate heterogeneous combined-log
data.  This generator reproduces that setup at reduced scale:

* standard table cardinality ratios (SF 1 = 6M lineitem, 1.5M orders,
  150k customers, 200k parts, 10k suppliers, 800k partsupp, 25
  nations, 5 regions) scaled by ``sf``;
* the value distributions the queries depend on: order/ship/commit/
  receipt date ranges and relationships, return flags and line
  statuses derived from dates, brand/type/container vocabularies,
  market segments, priorities, ship modes, comment text with the
  Q13/Q16 trigger phrases;
* dates as ISO strings (exercising date extraction, Section 4.9) and
  monetary values as numeric strings (exercising Section 5.2).

Everything is seeded, so experiments are reproducible.
"""

from __future__ import annotations

import datetime as _dt
import random
from typing import Dict, Iterator, List, Sequence

NATIONS = [
    ("ALGERIA", 0), ("ARGENTINA", 1), ("BRAZIL", 1), ("CANADA", 1),
    ("EGYPT", 4), ("ETHIOPIA", 0), ("FRANCE", 3), ("GERMANY", 3),
    ("INDIA", 2), ("INDONESIA", 2), ("IRAN", 4), ("IRAQ", 4),
    ("JAPAN", 2), ("JORDAN", 4), ("KENYA", 0), ("MOROCCO", 0),
    ("MOZAMBIQUE", 0), ("PERU", 1), ("CHINA", 2), ("ROMANIA", 3),
    ("SAUDI ARABIA", 4), ("VIETNAM", 2), ("RUSSIA", 3),
    ("UNITED KINGDOM", 3), ("UNITED STATES", 1),
]
REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]

SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"]
PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"]
SHIP_MODES = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"]
SHIP_INSTRUCT = ["DELIVER IN PERSON", "COLLECT COD", "NONE",
                 "TAKE BACK RETURN"]
TYPE_SYLL_1 = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"]
TYPE_SYLL_2 = ["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"]
TYPE_SYLL_3 = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"]
CONTAINER_1 = ["SM", "LG", "MED", "JUMBO", "WRAP"]
CONTAINER_2 = ["CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"]
COLORS = [
    "almond", "antique", "aquamarine", "azure", "beige", "bisque", "black",
    "blanched", "blue", "blush", "brown", "burlywood", "burnished",
    "chartreuse", "chiffon", "chocolate", "coral", "cornflower", "cornsilk",
    "cream", "cyan", "dark", "deep", "dim", "dodger", "drab", "firebrick",
    "floral", "forest", "frosted", "gainsboro", "ghost", "goldenrod",
    "green", "grey", "honeydew", "hot", "hotpink", "indian", "ivory",
]
_WORDS = (
    "the quick silver fox carefully packed ironic deposits along regular "
    "accounts furiously bold pinto beans sleep slyly express theodolites "
    "wake blithely final platelets haggle quiet requests nag"
).split()

START_DATE = _dt.date(1992, 1, 1)
END_DATE = _dt.date(1998, 8, 2)
_CUTOFF = _dt.date(1995, 6, 17)

#: standard cardinalities at SF 1
SF1 = {
    "supplier": 10_000,
    "part": 200_000,
    "customer": 150_000,
    "orders": 1_500_000,
    "partsupp_per_part": 4,
    "lineitems_per_order": 4,
}

TABLE_NAMES = ["region", "nation", "supplier", "customer", "part",
               "partsupp", "orders", "lineitem"]


def _money(value: float) -> str:
    """Monetary values are numeric strings, exercising Section 5.2."""
    return f"{value:.2f}"


def _comment(rng: random.Random, min_words: int = 3,
             max_words: int = 10) -> str:
    count = rng.randint(min_words, max_words)
    return " ".join(rng.choice(_WORDS) for _ in range(count))


def _date_between(rng: random.Random, start: _dt.date,
                  end: _dt.date) -> _dt.date:
    span = (end - start).days
    return start + _dt.timedelta(days=rng.randint(0, span))


class TpchGenerator:
    """Generate the eight TPC-H tables as JSON documents."""

    def __init__(self, sf: float = 0.01, seed: int = 42):
        self.sf = sf
        self.seed = seed
        self.num_supplier = max(5, round(SF1["supplier"] * sf))
        self.num_part = max(20, round(SF1["part"] * sf))
        self.num_customer = max(15, round(SF1["customer"] * sf))
        self.num_orders = max(50, round(SF1["orders"] * sf))

    # -- small dimension tables -------------------------------------------

    def region(self) -> List[dict]:
        rng = random.Random(self.seed + 1)
        return [
            {"r_regionkey": key, "r_name": name,
             "r_comment": _comment(rng)}
            for key, name in enumerate(REGIONS)
        ]

    def nation(self) -> List[dict]:
        rng = random.Random(self.seed + 2)
        return [
            {"n_nationkey": key, "n_name": name, "n_regionkey": region,
             "n_comment": _comment(rng)}
            for key, (name, region) in enumerate(NATIONS)
        ]

    def supplier(self) -> List[dict]:
        rng = random.Random(self.seed + 3)
        rows = []
        for key in range(1, self.num_supplier + 1):
            comment = _comment(rng)
            roll = rng.random()
            if roll < 0.005:
                comment += " Customer Complaints"
            elif roll < 0.01:
                comment += " Customer Recommends"
            rows.append({
                "s_suppkey": key,
                "s_name": f"Supplier#{key:09d}",
                "s_address": _comment(rng, 2, 4),
                "s_nationkey": rng.randrange(len(NATIONS)),
                "s_phone": self._phone(rng),
                "s_acctbal": _money(rng.uniform(-999.99, 9999.99)),
                "s_comment": comment,
            })
        return rows

    def customer(self) -> List[dict]:
        rng = random.Random(self.seed + 4)
        rows = []
        for key in range(1, self.num_customer + 1):
            nation = rng.randrange(len(NATIONS))
            rows.append({
                "c_custkey": key,
                "c_name": f"Customer#{key:09d}",
                "c_address": _comment(rng, 2, 4),
                "c_nationkey": nation,
                "c_phone": self._phone(rng, nation),
                "c_acctbal": _money(rng.uniform(-999.99, 9999.99)),
                "c_mktsegment": rng.choice(SEGMENTS),
                "c_comment": _comment(rng),
            })
        return rows

    def _phone(self, rng: random.Random, nation: int = None) -> str:
        country = 10 + (nation if nation is not None
                        else rng.randrange(len(NATIONS)))
        return (f"{country}-{rng.randint(100, 999)}-"
                f"{rng.randint(100, 999)}-{rng.randint(1000, 9999)}")

    def part(self) -> List[dict]:
        rng = random.Random(self.seed + 5)
        rows = []
        for key in range(1, self.num_part + 1):
            retail = (90000 + (key % 200001) / 10 + 100 * (key % 1000)) / 100
            rows.append({
                "p_partkey": key,
                "p_name": " ".join(rng.sample(COLORS, 5)),
                "p_mfgr": f"Manufacturer#{rng.randint(1, 5)}",
                "p_brand": f"Brand#{rng.randint(1, 5)}{rng.randint(1, 5)}",
                "p_type": (f"{rng.choice(TYPE_SYLL_1)} "
                           f"{rng.choice(TYPE_SYLL_2)} "
                           f"{rng.choice(TYPE_SYLL_3)}"),
                "p_size": rng.randint(1, 50),
                "p_container": (f"{rng.choice(CONTAINER_1)} "
                                f"{rng.choice(CONTAINER_2)}"),
                "p_retailprice": _money(retail),
                "p_comment": _comment(rng, 2, 5),
            })
        return rows

    def partsupp(self) -> List[dict]:
        rng = random.Random(self.seed + 6)
        rows = []
        for part in range(1, self.num_part + 1):
            for slot in range(SF1["partsupp_per_part"]):
                supp = ((part + slot * (self.num_supplier //
                                        SF1["partsupp_per_part"] + 1))
                        % self.num_supplier) + 1
                rows.append({
                    "ps_partkey": part,
                    "ps_suppkey": supp,
                    "ps_availqty": rng.randint(1, 9999),
                    "ps_supplycost": _money(rng.uniform(1.0, 1000.0)),
                    "ps_comment": _comment(rng),
                })
        return rows

    def orders(self) -> List[dict]:
        rng = random.Random(self.seed + 7)
        rows = []
        for key in range(1, self.num_orders + 1):
            orderdate = _date_between(rng, START_DATE,
                                      END_DATE - _dt.timedelta(days=151))
            comment = _comment(rng)
            if rng.random() < 0.01:
                comment += " special requests"
            # the TPC-H spec leaves every third customer without orders
            # (Q13's zero groups, Q22's "no orders" anti join)
            custkey = rng.randint(1, self.num_customer)
            while custkey % 3 == 0:
                custkey = rng.randint(1, self.num_customer)
            rows.append({
                "o_orderkey": key,
                "o_custkey": custkey,
                "o_orderstatus": rng.choice(["F", "O", "P"]),
                "o_totalprice": _money(rng.uniform(800.0, 500000.0)),
                "o_orderdate": orderdate.isoformat(),
                "o_orderpriority": rng.choice(PRIORITIES),
                "o_clerk": f"Clerk#{rng.randint(1, max(2, self.num_orders // 100)):09d}",
                "o_shippriority": 0,
                "o_comment": comment,
            })
        return rows

    def lineitem(self, orders: Sequence[dict],
                 parts: Sequence[dict]) -> List[dict]:
        rng = random.Random(self.seed + 8)
        price_of = {row["p_partkey"]: float(row["p_retailprice"])
                    for row in parts}
        rows = []
        for order in orders:
            orderdate = _dt.date.fromisoformat(order["o_orderdate"])
            for line in range(1, rng.randint(1, 7) + 1):
                part = rng.randint(1, self.num_part)
                supp = ((part + rng.randint(0, 3) *
                         (self.num_supplier // 4 + 1))
                        % self.num_supplier) + 1
                quantity = rng.randint(1, 50)
                extended = quantity * price_of[part]
                shipdate = orderdate + _dt.timedelta(days=rng.randint(1, 121))
                commitdate = orderdate + _dt.timedelta(days=rng.randint(30, 90))
                receiptdate = shipdate + _dt.timedelta(days=rng.randint(1, 30))
                returnflag = (rng.choice(["R", "A"])
                              if receiptdate <= _CUTOFF else "N")
                linestatus = "O" if shipdate > _CUTOFF else "F"
                rows.append({
                    "l_orderkey": order["o_orderkey"],
                    "l_partkey": part,
                    "l_suppkey": supp,
                    "l_linenumber": line,
                    "l_quantity": quantity,
                    "l_extendedprice": _money(extended),
                    "l_discount": round(rng.randint(0, 10) / 100, 2),
                    "l_tax": round(rng.randint(0, 8) / 100, 2),
                    "l_returnflag": returnflag,
                    "l_linestatus": linestatus,
                    "l_shipdate": shipdate.isoformat(),
                    "l_commitdate": commitdate.isoformat(),
                    "l_receiptdate": receiptdate.isoformat(),
                    "l_shipinstruct": rng.choice(SHIP_INSTRUCT),
                    "l_shipmode": rng.choice(SHIP_MODES),
                    "l_comment": _comment(rng, 2, 5),
                })
        return rows

    # -- bundles -----------------------------------------------------------

    def tables(self) -> Dict[str, List[dict]]:
        """All eight tables keyed by name."""
        orders = self.orders()
        parts = self.part()
        return {
            "region": self.region(),
            "nation": self.nation(),
            "supplier": self.supplier(),
            "customer": self.customer(),
            "part": parts,
            "partsupp": self.partsupp(),
            "orders": orders,
            "lineitem": self.lineitem(orders, parts),
        }

    def combined(self, shuffled: bool = False,
                 interleave: bool = True) -> List[dict]:
        """The paper's combined relation: all tables in one document
        stream.

        ``interleave`` mimics parallel multi-table loading (documents of
        different tables mixed block-wise, "imperfect insertion
        order"); ``shuffled`` randomizes the order completely
        (Section 6.4).
        """
        tables = self.tables()
        if shuffled:
            documents = [doc for rows in tables.values() for doc in rows]
            random.Random(self.seed + 99).shuffle(documents)
            return documents
        if not interleave:
            return [doc for name in TABLE_NAMES for doc in tables[name]]
        # block-wise round robin: bursts from each loader thread
        rng = random.Random(self.seed + 98)
        streams = [list(reversed(tables[name])) for name in TABLE_NAMES]
        documents: List[dict] = []
        while any(streams):
            alive = [stream for stream in streams if stream]
            stream = rng.choice(alive)
            for _ in range(min(len(stream), rng.randint(50, 200))):
                documents.append(stream.pop())
        return documents


def generate_tables(sf: float = 0.01, seed: int = 42) -> Dict[str, List[dict]]:
    return TpchGenerator(sf, seed).tables()


def generate_combined(sf: float = 0.01, seed: int = 42,
                      shuffled: bool = False) -> List[dict]:
    return TpchGenerator(sf, seed).combined(shuffled=shuffled)
