"""JSONized TPC-H: generator + the 22 queries (Sections 6.1, 6.4).

* :func:`generate_tables` / :func:`generate_combined` — deterministic
  data at reduced scale.
* :data:`TPCH_QUERIES` — the 22 queries over JSON access operators.
* :func:`make_database` — a ready :class:`~repro.Database` in split,
  combined or shuffled-combined mode for any storage format.
"""

from typing import Optional

from repro.database import Database
from repro.storage.formats import StorageFormat
from repro.tiles.extractor import ExtractionConfig
from repro.workloads.tpch.generator import (
    TABLE_NAMES,
    TpchGenerator,
    generate_combined,
    generate_tables,
)
from repro.workloads.tpch.queries import HIGHLIGHTED_QUERIES, TPCH_QUERIES

__all__ = [
    "HIGHLIGHTED_QUERIES",
    "TABLE_NAMES",
    "TPCH_QUERIES",
    "TpchGenerator",
    "generate_combined",
    "generate_tables",
    "make_database",
]


def make_database(sf: float = 0.01,
                  storage_format: StorageFormat = StorageFormat.TILES,
                  config: Optional[ExtractionConfig] = None,
                  combined: bool = True,
                  shuffled: bool = False,
                  seed: int = 42,
                  num_workers: int = 1) -> Database:
    """Load TPC-H and return a queryable database.

    In combined mode (the paper's default) all eight table names map to
    one physical relation holding every document type.
    """
    db = Database(storage_format, config)
    if combined:
        documents = generate_combined(sf, seed, shuffled=shuffled)
        relation = db.load_table("tpch_combined", documents, storage_format,
                                 config, num_workers=num_workers)
        for name in TABLE_NAMES:
            db.register(name, relation)
    else:
        for name, rows in generate_tables(sf, seed).items():
            db.load_table(name, rows, storage_format, config,
                          num_workers=num_workers)
    return db
