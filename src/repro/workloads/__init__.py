"""Workload generators and query sets for the evaluation (Section 6).

* :mod:`repro.workloads.tpch` — JSONized TPC-H (combined / shuffled).
* :mod:`repro.workloads.yelp` — combined Yelp-like data + 5 queries.
* :mod:`repro.workloads.twitter` — tweet stream with schema evolution,
  deletes and high-cardinality arrays + 5 queries (and Tiles-*
  variants).
* :mod:`repro.workloads.hackernews` — Figure 3's per-type news items.
* :mod:`repro.workloads.docs` — synthetic SIMD-JSON-style corpora for
  the binary-format comparison (Section 6.9).
"""
