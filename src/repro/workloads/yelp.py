"""Yelp-like combined data set + the five analysis queries (Section 6.2).

The real Yelp academic data set ships five document types (businesses,
reviews, users, check-ins, tips) with distinct shapes — nested
attribute objects, friend arrays, date strings.  The generator emulates
those shapes and the paper's *combined* setup: all five types live in
one relation, loaded in bursts per type (log-style interleaving).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.database import Database
from repro.storage.formats import StorageFormat
from repro.tiles.extractor import ExtractionConfig

CITIES = ["Phoenix", "Las Vegas", "Toronto", "Charlotte", "Pittsburgh",
          "Madison", "Cleveland", "Mesa", "Henderson", "Tempe"]
STATES = ["AZ", "NV", "ON", "NC", "PA", "WI", "OH"]
CATEGORIES = ["Restaurants", "Bars", "Coffee & Tea", "Shopping", "Pizza",
              "Nightlife", "Mexican", "Italian", "Breakfast & Brunch"]
_WORDS = ("great food nice staff slow service amazing tacos cozy place "
          "would return overpriced drinks friendly bartender loud music "
          "clean rooms fresh ingredients").split()


def _sentence(rng: random.Random, lo: int = 5, hi: int = 25) -> str:
    return " ".join(rng.choice(_WORDS) for _ in range(rng.randint(lo, hi)))


def _date(rng: random.Random) -> str:
    return (f"{rng.randint(2010, 2019)}-{rng.randint(1, 12):02d}-"
            f"{rng.randint(1, 28):02d}")


class YelpGenerator:
    """Deterministic Yelp-shaped documents."""

    def __init__(self, num_businesses: int = 300, reviews_per_business: int = 20,
                 seed: int = 7):
        self.num_businesses = num_businesses
        self.reviews_per_business = reviews_per_business
        self.num_users = max(20, num_businesses * 2)
        self.seed = seed

    def businesses(self) -> List[dict]:
        rng = random.Random(self.seed + 1)
        rows = []
        for key in range(self.num_businesses):
            attributes = {
                "RestaurantsPriceRange2": rng.randint(1, 4),
                "BusinessAcceptsCreditCards": rng.random() < 0.9,
                "WiFi": rng.choice(["free", "no", "paid"]),
            }
            if rng.random() < 0.5:
                attributes["Ambience"] = {
                    "romantic": rng.random() < 0.2,
                    "casual": rng.random() < 0.7,
                }
            rows.append({
                "business_id": f"b{key:06d}",
                "name": f"Business {key}",
                "address": f"{rng.randint(1, 9999)} Main St",
                "city": rng.choice(CITIES),
                "state": rng.choice(STATES),
                "stars": rng.randint(2, 10) / 2,
                "review_count": rng.randint(3, 500),
                "is_open": int(rng.random() < 0.8),
                "attributes": attributes,
                "categories": ", ".join(
                    rng.sample(CATEGORIES, rng.randint(1, 3))),
                "hours": {"Monday": "9:0-17:0", "Saturday": "10:0-22:0"},
            })
        return rows

    def users(self) -> List[dict]:
        rng = random.Random(self.seed + 2)
        rows = []
        for key in range(self.num_users):
            friend_count = rng.randint(0, 15)
            rows.append({
                "user_id": f"u{key:06d}",
                "name": f"User{key}",
                "review_count": rng.randint(0, 800),
                "yelping_since": _date(rng),
                "friends": [f"u{rng.randrange(self.num_users):06d}"
                            for _ in range(friend_count)],
                "useful": rng.randint(0, 3000),
                "fans": rng.randint(0, 120),
                "average_stars": round(rng.uniform(1.0, 5.0), 2),
            })
        return rows

    def reviews(self) -> List[dict]:
        rng = random.Random(self.seed + 3)
        rows = []
        key = 0
        for business in range(self.num_businesses):
            for _ in range(rng.randint(1, self.reviews_per_business * 2 - 1)):
                rows.append({
                    "review_id": f"r{key:08d}",
                    "user_id": f"u{rng.randrange(self.num_users):06d}",
                    "business_id": f"b{business:06d}",
                    "stars": rng.randint(1, 5),
                    "useful": rng.randint(0, 30),
                    "funny": rng.randint(0, 10),
                    "cool": rng.randint(0, 10),
                    # real Yelp reviews are long free text; the bulky
                    # non-extracted payload drives the Table 6 ratios
                    "text": _sentence(rng, 40, 120),
                    "date": _date(rng),
                })
                key += 1
        return rows

    def checkins(self) -> List[dict]:
        rng = random.Random(self.seed + 4)
        return [
            {"business_id": f"b{rng.randrange(self.num_businesses):06d}",
             "date": ", ".join(_date(rng) for _ in range(rng.randint(1, 5)))}
            for _ in range(self.num_businesses // 2)
        ]

    def tips(self) -> List[dict]:
        rng = random.Random(self.seed + 5)
        return [
            {"user_id": f"u{rng.randrange(self.num_users):06d}",
             "business_id": f"b{rng.randrange(self.num_businesses):06d}",
             "text": _sentence(rng, 3, 10),
             "date": _date(rng),
             "compliment_count": rng.randint(0, 6)}
            for _ in range(self.num_businesses)
        ]

    def combined(self) -> List[dict]:
        """All five document types interleaved in loader-style bursts."""
        rng = random.Random(self.seed + 9)
        streams = [list(reversed(rows)) for rows in (
            self.businesses(), self.reviews(), self.users(),
            self.checkins(), self.tips())]
        documents: List[dict] = []
        while any(streams):
            alive = [stream for stream in streams if stream]
            stream = rng.choice(alive)
            for _ in range(min(len(stream), rng.randint(20, 120))):
                documents.append(stream.pop())
        return documents


#: The five analysis queries (modeled on the paper's business-insight
#: queries [22]); all aliases hit the combined relation.
YELP_QUERIES: Dict[int, str] = {
    # 1: average review stars per city (review x business join)
    1: """
select b.data->>'city' as city, avg(r.data->>'stars'::int) as avg_stars,
       count(*) as num_reviews
from yelp r, yelp b
where r.data->>'business_id' = b.data->>'business_id'
  and r.data->>'review_id' is not null
  and b.data->>'name' is not null
group by b.data->>'city'
order by avg_stars desc
""",
    # 2: open businesses with many reviews per state
    2: """
select b.data->>'state' as state, count(*) as businesses
from yelp b
where b.data->>'is_open'::int = 1
  and b.data->>'review_count'::int > 100
group by b.data->>'state'
order by businesses desc
""",
    # 3: power users: review activity joined with user profiles
    3: """
select u.data->>'user_id' as user_id, u.data->>'fans'::int as fans,
       count(*) as written
from yelp u, yelp r
where u.data->>'user_id' = r.data->>'user_id'
  and u.data->>'yelping_since' is not null
  and r.data->>'review_id' is not null
group by u.data->>'user_id', u.data->>'fans'::int
having count(*) > 10
order by written desc, user_id
limit 25
""",
    # 4: the paper's example: number of reviews in groups of stars
    4: """
select r.data->>'stars'::int as stars, count(*) as num_reviews
from yelp r
where r.data->>'review_id' is not null
group by r.data->>'stars'::int
order by stars
""",
    # 5: useful votes on recent reviews of top-rated businesses
    5: """
select b.data->>'city' as city,
       sum(r.data->>'useful'::int) as useful_votes
from yelp r, yelp b
where r.data->>'business_id' = b.data->>'business_id'
  and b.data->>'stars'::float >= 4.0
  and r.data->>'date'::date >= date '2015-01-01'
group by b.data->>'city'
order by useful_votes desc
""",
}


def make_database(num_businesses: int = 300,
                  storage_format: StorageFormat = StorageFormat.TILES,
                  config: Optional[ExtractionConfig] = None,
                  seed: int = 7,
                  num_workers: int = 1) -> Database:
    """Load the combined Yelp relation under the name ``yelp``."""
    generator = YelpGenerator(num_businesses, seed=seed)
    db = Database(storage_format, config)
    db.load_table("yelp", generator.combined(), storage_format, config,
                  num_workers=num_workers)
    return db
