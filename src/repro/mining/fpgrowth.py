"""FPGrowth frequent itemset mining (Section 3.3).

JSON tiles mines frequent itemsets of dictionary-encoded (key path,
type) items to decide which paths to materialize and how to redistribute
tuples between tiles.  FPGrowth [29] avoids Apriori's candidate
generation: it builds a prefix tree of frequent items and recursively
mines conditional pattern trees.

Because the number of frequent itemsets is in the worst case the power
set of the frequent items, mining is bounded by a *budget* ``u`` on the
number of produced itemsets.  Equation (1) of the paper turns the budget
into a maximal itemset size ``k``: all subsets of size 1..k of the n
frequent items must fit within the budget, which bounds the recursion
depth so "the system is not overloaded during JSON tile
materialization".
"""

from __future__ import annotations

import math
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.errors import MiningError

Itemset = FrozenSet[int]

DEFAULT_BUDGET = 4096


def max_itemset_size(num_items: int, budget: int) -> int:
    """Compute ``k`` from equation (1): the largest k such that
    ``sum_{i=1..k} C(n, i) <= budget`` (at least 1 so single items are
    always mined)."""
    if num_items <= 0:
        return 0
    total = 0
    for k in range(1, num_items + 1):
        total += math.comb(num_items, k)
        if total > budget:
            return max(1, k - 1)
    return num_items


class _Node:
    __slots__ = ("item", "count", "parent", "children")

    def __init__(self, item: int, parent: Optional["_Node"]):
        self.item = item
        self.count = 0
        self.parent = parent
        self.children: Dict[int, "_Node"] = {}


class _FPTree:
    """Prefix tree of frequent items with a header table of node lists."""

    def __init__(self):
        self.root = _Node(-1, None)
        self.header: Dict[int, List[_Node]] = {}

    def insert(self, items: Sequence[int], count: int) -> None:
        node = self.root
        for item in items:
            child = node.children.get(item)
            if child is None:
                child = _Node(item, node)
                node.children[item] = child
                self.header.setdefault(item, []).append(child)
            child.count += count
            node = child

    def prefix_paths(self, item: int) -> List[Tuple[List[int], int]]:
        """Conditional pattern base: the path above every node of *item*."""
        paths = []
        for node in self.header.get(item, ()):
            path: List[int] = []
            parent = node.parent
            while parent is not None and parent.item != -1:
                path.append(parent.item)
                parent = parent.parent
            path.reverse()
            paths.append((path, node.count))
        return paths

    def is_single_path(self) -> Optional[List[Tuple[int, int]]]:
        """If the tree is a single chain, return [(item, count)]; the
        mining of such trees enumerates subsets directly."""
        chain: List[Tuple[int, int]] = []
        node = self.root
        while node.children:
            if len(node.children) > 1:
                return None
            node = next(iter(node.children.values()))
            chain.append((node.item, node.count))
        return chain


class FPGrowth:
    """Budgeted FPGrowth miner over integer-item transactions."""

    def __init__(self, min_count: int, budget: int = DEFAULT_BUDGET):
        if min_count < 1:
            raise MiningError("min_count must be at least 1")
        if budget < 1:
            raise MiningError("budget must be at least 1")
        self.min_count = min_count
        self.budget = budget

    def mine(self, transactions: Iterable[Sequence[int]]) -> Dict[Itemset, int]:
        """Return ``{itemset: support_count}`` for every frequent itemset
        up to the budgeted size; smaller itemsets are produced first."""
        transactions = [list(t) for t in transactions]
        counts: Dict[int, int] = {}
        for transaction in transactions:
            for item in set(transaction):
                counts[item] = counts.get(item, 0) + 1
        frequent = {item for item, count in counts.items() if count >= self.min_count}
        if not frequent:
            return {}
        max_size = max_itemset_size(len(frequent), self.budget)

        # Order transactions by descending frequency (ties by item id)
        # so shared prefixes compress the tree.
        def order(item: int) -> Tuple[int, int]:
            return (-counts[item], item)

        tree = _FPTree()
        for transaction in transactions:
            kept = sorted({i for i in transaction if i in frequent}, key=order)
            if kept:
                tree.insert(kept, 1)

        result: Dict[Itemset, int] = {}
        self._mine_tree(tree, frozenset(), counts, max_size, result)
        return result

    def _mine_tree(self, tree: _FPTree, suffix: Itemset,
                   counts: Dict[int, int], max_size: int,
                   result: Dict[Itemset, int]) -> None:
        if len(suffix) >= max_size or len(result) >= self.budget:
            return
        chain = tree.is_single_path()
        if chain is not None:
            self._mine_single_path(chain, suffix, max_size, result)
            return
        header_items = sorted(tree.header, key=lambda item: (counts[item], -item))
        for item in header_items:
            support = sum(node.count for node in tree.header[item])
            if support < self.min_count:
                continue
            itemset = suffix | {item}
            if len(result) >= self.budget:
                return
            result[itemset] = support
            if len(itemset) >= max_size:
                continue
            conditional = _FPTree()
            conditional_counts: Dict[int, int] = {}
            paths = tree.prefix_paths(item)
            for path, count in paths:
                for path_item in path:
                    conditional_counts[path_item] = (
                        conditional_counts.get(path_item, 0) + count
                    )
            keep = {i for i, c in conditional_counts.items() if c >= self.min_count}
            if not keep:
                continue

            def cond_order(i: int) -> Tuple[int, int]:
                return (-conditional_counts[i], i)

            for path, count in paths:
                kept = sorted((i for i in path if i in keep), key=cond_order)
                if kept:
                    conditional.insert(kept, count)
            self._mine_tree(conditional, itemset, conditional_counts,
                            max_size, result)

    def _mine_single_path(self, chain: List[Tuple[int, int]], suffix: Itemset,
                          max_size: int, result: Dict[Itemset, int]) -> None:
        """All combinations of a single-path tree are frequent; support of
        a combination is the count of its deepest item.  Enumerate
        breadth-first so smaller itemsets come first (budget fairness)."""
        eligible = [(item, count) for item, count in chain
                    if count >= self.min_count]
        frontier: List[Tuple[Itemset, int, int]] = [(suffix, -1, 0)]
        while frontier:
            next_frontier: List[Tuple[Itemset, int, int]] = []
            for base, last_index, _depth in frontier:
                for index in range(last_index + 1, len(eligible)):
                    if len(result) >= self.budget:
                        return
                    item, count = eligible[index]
                    itemset = base | {item}
                    if len(itemset) > max_size:
                        continue
                    result[itemset] = count
                    if len(itemset) < max_size:
                        next_frontier.append((itemset, index, 0))
            frontier = next_frontier


def maximal_itemsets(frequent: Dict[Itemset, int]) -> Dict[Itemset, int]:
    """Keep only itemsets not strictly contained in another frequent
    itemset."""
    by_size = sorted(frequent, key=len, reverse=True)
    maximal: List[Itemset] = []
    result: Dict[Itemset, int] = {}
    for itemset in by_size:
        if any(itemset < kept for kept in maximal):
            continue
        maximal.append(itemset)
        result[itemset] = frequent[itemset]
    return result


def closed_itemsets(frequent: Dict[Itemset, int]) -> Dict[Itemset, int]:
    """The "maximum subsets" of Section 3.1 step 2: an itemset survives
    unless a strict superset has the *same* frequency (every further
    subset of a maximum itemset has the same frequency).  In the paper's
    tile #2 example this keeps both ({i,c,t,u_i,r}, 4) and
    ({i,c,t,u_i,r,g_l}, 3).

    Only equal-support supersets can dominate, so the subset checks are
    confined to same-support buckets.
    """
    by_support: Dict[int, List[Itemset]] = {}
    for itemset, support in frequent.items():
        by_support.setdefault(support, []).append(itemset)
    result: Dict[Itemset, int] = {}
    for support, bucket in by_support.items():
        bucket.sort(key=len, reverse=True)
        kept: List[Itemset] = []
        for itemset in bucket:
            if not any(itemset < other for other in kept):
                kept.append(itemset)
                result[itemset] = support
    return result


class ItemsetMatcher:
    """Repeated best-itemset matching over a fixed itemset list.

    Itemsets and transactions are encoded as integer bitmasks so the
    per-tuple work of Section 3.2 step 3 is a handful of ``&`` /
    ``bit_count`` operations instead of set intersections.
    """

    __slots__ = ("_itemsets", "_masks", "_sizes", "_sums")

    def __init__(self, itemsets: Sequence[Itemset]):
        self._itemsets = list(itemsets)
        self._masks = [_mask(itemset) for itemset in itemsets]
        self._sizes = [len(itemset) for itemset in itemsets]
        self._sums = [sum(itemset) for itemset in itemsets]

    def match(self, transaction) -> Optional[Itemset]:
        """Same semantics as :func:`best_match`."""
        tmask = _mask(transaction)
        best = -1
        best_key = None
        for index, smask in enumerate(self._masks):
            overlap = (tmask & smask).bit_count()
            if overlap == 0:
                continue
            key = (-overlap, self._sizes[index] - overlap,
                   -self._sizes[index], self._sums[index])
            if best_key is None or key < best_key:
                best_key = key
                best = index
        if best < 0:
            return None
        return self._itemsets[best]


def _mask(items) -> int:
    mask = 0
    for item in items:
        mask |= 1 << item
    return mask


def best_match(transaction: Itemset,
               itemsets: Sequence[Itemset]) -> Optional[Itemset]:
    """Pick the itemset that describes a tuple best (Section 3.2 step 3).

    The largest overlap ("most items in common") wins; among equal
    overlaps, the itemset claiming the fewest keys the tuple *lacks*
    describes it better (a pure subtype must not be absorbed into its
    supertype's cluster); then the larger itemset; remaining ties are
    resolved deterministically by the minimal sum of item ids so every
    tuple with the same tie picks the same itemset.
    """
    best: Optional[Itemset] = None
    best_key: Optional[Tuple[int, int, int, int]] = None
    for itemset in itemsets:
        overlap = len(transaction & itemset)
        if overlap == 0:
            continue
        missing = len(itemset) - overlap
        key = (-overlap, missing, -len(itemset), sum(itemset))
        if best_key is None or key < best_key:
            best_key = key
            best = itemset
    return best
