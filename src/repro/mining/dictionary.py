"""Dictionary encoding of (key path, type) items (Section 3.3).

"We collect all keys from the documents and store them dictionary
encoded.  Dictionaries are created for every JSON tile and are used as
the database to mine."  The dictionary maps a typed key path to a dense
integer id; FPGrowth then operates on integer transactions.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from repro.core.jsonpath import KeyPath, collect_key_paths
from repro.core.types import JsonType

Item = Tuple[KeyPath, JsonType]


class ItemDictionary:
    """Dense integer encoding of typed key paths, with occurrence counts."""

    __slots__ = ("_ids", "_items", "counts")

    def __init__(self):
        self._ids: Dict[Item, int] = {}
        self._items: List[Item] = []
        self.counts: List[int] = []

    def encode(self, item: Item) -> int:
        item_id = self._ids.get(item)
        if item_id is None:
            item_id = len(self._items)
            self._ids[item] = item_id
            self._items.append(item)
            self.counts.append(0)
        self.counts[item_id] += 1
        return item_id

    def lookup(self, item: Item) -> int:
        """Id of an item that must already exist."""
        return self._ids[item]

    def decode(self, item_id: int) -> Item:
        return self._items[item_id]

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, item: Item) -> bool:
        return item in self._ids

    def items(self) -> Iterable[Tuple[Item, int]]:
        return iter(self._ids.items())

    def key_counts(self) -> Dict[str, int]:
        """Key-path frequency database stored in the tile header
        (Section 4.4): textual path -> tuples containing it."""
        merged: Dict[str, int] = {}
        for (path, _jtype), item_id in self._ids.items():
            text = str(path)
            merged[text] = merged.get(text, 0) + self.counts[item_id]
        return merged


def encode_documents(
    documents: Sequence[object], max_array_elements: int = 8
) -> Tuple[ItemDictionary, List[List[int]]]:
    """Collect the typed key paths of every document and dictionary-encode
    them into integer transactions (Section 3.1 steps 1-2 input)."""
    dictionary = ItemDictionary()
    transactions: List[List[int]] = []
    for document in documents:
        paths = collect_key_paths(document, max_array_elements)
        transaction = sorted({dictionary.encode(item) for item in paths})
        transactions.append(transaction)
    return dictionary, transactions


def combined_key_counts(key_counts: Iterable[Dict[str, int]]) -> Dict[str, int]:
    """Merge several tiles' key-path frequency databases (Section 4.4)
    into one, as if their documents formed a single tile.

    The LSM compaction planner uses this to *predict* merge-time mining
    from resident headers alone: a path whose combined frequency clears
    the extraction threshold over the merged rows becomes a column of
    the output tile even when individual inputs fell short — without
    decoding a single document.
    """
    merged: Dict[str, int] = {}
    for counts in key_counts:
        for text, count in counts.items():
            merged[text] = merged.get(text, 0) + count
    return merged


def subset_dictionary(
    parent: ItemDictionary, transactions: Sequence[Sequence[int]]
) -> Tuple[ItemDictionary, List[List[int]]]:
    """Re-encode a slice of transactions with tile-local ids and counts.

    Tile construction after partition reordering reuses the partition's
    already-collected transactions instead of traversing every document
    a second time; this builds the tile-local dictionary the extraction
    step expects.
    """
    local = ItemDictionary()
    remapped: List[List[int]] = []
    mapping: Dict[int, Item] = {}
    for transaction in transactions:
        row = []
        for item_id in transaction:
            item = mapping.get(item_id)
            if item is None:
                item = parent.decode(item_id)
                mapping[item_id] = item
            row.append(local.encode(item))
        row.sort()
        remapped.append(row)
    return local, remapped
