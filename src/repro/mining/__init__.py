"""Frequent itemset mining over typed key paths (Section 3.3).

* :class:`FPGrowth` — budgeted FPGrowth miner (equation 1 bounds the
  itemset size so tile creation is never overloaded).
* :class:`ItemDictionary` / :func:`encode_documents` — per-tile
  dictionary encoding of (key path, type) items.
* :func:`maximal_itemsets` / :func:`best_match` — helpers used by
  extraction (Section 3.1) and reordering (Section 3.2).
"""

from repro.mining.dictionary import ItemDictionary, encode_documents
from repro.mining.fpgrowth import (
    DEFAULT_BUDGET,
    FPGrowth,
    best_match,
    closed_itemsets,
    max_itemset_size,
    maximal_itemsets,
)

__all__ = [
    "DEFAULT_BUDGET",
    "FPGrowth",
    "ItemDictionary",
    "best_match",
    "closed_itemsets",
    "encode_documents",
    "max_itemset_size",
    "maximal_itemsets",
]
