"""Relations: tables of tiles + fallback documents, with updates.

A relation holds its tuples as a list of tiles.  Depending on the
storage format a tile carries extracted columns (SINEW / TILES /
TILES_STAR) or is a plain chunk of binary documents (JSONB).  The raw
JSON text format keeps the original strings instead and re-parses on
access.

Updates (Section 4.7) patch extracted column values in place, register
new key paths in the tile's bloom filter, and trigger a tile
recomputation once the majority of its tuples no longer match the
extracted schema.
"""

from __future__ import annotations

import json
import math
import threading
from contextlib import contextmanager, nullcontext
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.core.jsonpath import KeyPath, collect_key_paths
from repro.errors import StorageError
from repro.jsonb import decode as jsonb_decode
from repro.jsonb import encode as jsonb_encode
from repro.lsm.manifest import LevelManifest
from repro.stats.table_stats import TableStatistics
from repro.storage.formats import StorageFormat
from repro.storage.tile_cache import GLOBAL_TILE_CACHE
from repro.storage.tilestore import GLOBAL_TILE_STORE, TileHandle
from repro.tiles.extractor import ExtractionConfig, build_tile
from repro.tiles.extractor import _materialize_value  # shared coercion
from repro.tiles.tile import Tile

#: test hook: called between building a merged tile and committing the
#: manifest swap in :meth:`Relation.compact_tiles`.  Crash-recovery
#: tests raise from here to model a process dying mid-merge; must stay
#: ``None`` in production.
_COMPACT_COMMIT_BARRIER = None


class Relation:
    """A named table stored in one of the five formats."""

    def __init__(self, name: str, storage_format: StorageFormat,
                 config: Optional[ExtractionConfig] = None):
        self.name = name
        self.format = storage_format
        self.config = config or ExtractionConfig()
        #: tile *handles*: always-resident headers over demand-loaded
        #: payloads, managed by the process-wide tile store
        self.tiles: List[TileHandle] = []
        self.text_rows: Optional[List[str]] = [] \
            if storage_format == StorageFormat.JSON else None
        self.statistics = TableStatistics()
        #: Tiles-* child relations keyed by array path text.
        self.children: Dict[str, "Relation"] = {}
        self.array_paths: List[KeyPath] = []
        #: seconds per load phase (parse / write_jsonb / mining /
        #: extract / reorder), filled by the loader (Figure 16).
        self.load_breakdown: Dict[str, float] = {}
        self._outlier_counts: Dict[int, int] = {}
        #: documents inserted since the last tile was sealed
        #: (Section 3.2: "a new tile is created whenever the number of
        #: newly-inserted tuples reaches the tile size")
        self._insert_buffer: List[object] = []
        #: guards buffer mutation and the tiles-list append; cheap
        #: operations only — tile building happens outside of it
        self._buffer_lock = threading.Lock()
        #: serializes sealers so tile numbers / first rows stay dense
        #: while the expensive build runs outside ``_buffer_lock``
        self._seal_lock = threading.Lock()
        #: when False, :meth:`insert` never seals synchronously; the
        #: owner (e.g. the server's background sealer) must watch
        #: :attr:`pending_inserts` and call :meth:`flush_inserts`
        self.auto_seal = True
        #: callbacks ``(relation, tile)`` fired after a tile is sealed
        self._seal_hooks: List[Callable[["Relation", TileHandle], None]] = []
        #: callbacks ``(event, relation, payload)`` fired on storage
        #: reorganization events ("seal", "update", "recompute",
        #: "reorganize", and "evict" when the tile store pages a tile
        #: out); the maintenance health tracker subscribes.
        #: Hooks must never raise into the foreground path — exceptions
        #: are swallowed.
        self._event_hooks: List[Callable[[str, "Relation", object], None]] = []
        #: accumulated per-table scan counters (the engine's executor
        #: records every finished scan here; served by `stats`)
        self.scan_totals: Dict[str, int] = {}
        self._scan_totals_lock = threading.Lock()
        #: LSM compaction knobs (:class:`repro.lsm.LsmConfig`); ``None``
        #: keeps the flat level-0 layout and the planner proposes no
        #: merges.  The server / CLI set this on every base table.
        self.lsm_config = None
        #: compaction counters surfaced by ``stats`` and maintenance
        #: health (guarded by ``_buffer_lock`` like the tiles list)
        self.lsm_counters: Dict[str, int] = {
            "merges": 0, "docs_rewritten": 0, "bytes_written": 0}
        #: epoch-stamped immutable snapshot of the tiles list
        #: (DESIGN.md §8): bumped by every mutation, rebuilt lazily
        self._manifest_epoch = 0
        self._manifest: Optional[LevelManifest] = None

    def record_scan(self, counters) -> None:
        """Fold one finished scan's counters into the running totals.

        *counters* is anything with ``as_dict()`` (duck-typed so
        storage stays import-independent of the engine).
        """
        with self._scan_totals_lock:
            for name, value in counters.as_dict().items():
                self.scan_totals[name] = self.scan_totals.get(name, 0) + value
            self.scan_totals["queries"] = self.scan_totals.get("queries", 0) + 1

    def adopt_tile(self, tile: Tile) -> TileHandle:
        """Wrap a freshly built in-memory tile into a dirty (never
        evicted) handle owned by this relation.  Every path that adds a
        tile — sealing, bulk load, recompute, reorganize — goes through
        here; the handle becomes clean when a checkpoint re-binds it to
        an on-disk segment."""
        handle = TileHandle.wrap(tile, GLOBAL_TILE_STORE, self.name)
        handle.owner = self
        return handle

    # ------------------------------------------------------------------
    # manifest snapshots (repro.lsm; DESIGN.md §8)

    def _bump_manifest_locked(self) -> None:
        """The tiles list just changed; callers hold ``_buffer_lock``."""
        self._manifest_epoch += 1
        self._manifest = None

    def manifest(self) -> LevelManifest:
        """The current epoch-stamped tile-set snapshot.

        Readers (scans, morsel enumeration, cluster partial queries)
        take one manifest for the whole operation and therefore observe
        either the pre-compaction tiles or the post-compaction tile,
        never a torn mixture.  The snapshot is cached until the next
        mutation; the length check additionally catches direct appends
        by loaders that bypass the relation's own mutation paths.
        """
        with self._buffer_lock:
            if self._manifest is None \
                    or len(self._manifest.tiles) != len(self.tiles):
                self._manifest = LevelManifest(self._manifest_epoch,
                                               tuple(self.tiles))
            return self._manifest

    def lsm_status(self) -> Dict[str, object]:
        """Per-level occupancy + compaction counters for ``stats``,
        EXPLAIN ANALYZE and maintenance health.  Header-only."""
        manifest = self.manifest()
        with self._buffer_lock:
            counters = dict(self.lsm_counters)
        return {
            "enabled": bool(self.lsm_config is not None
                            and self.lsm_config.enabled),
            "epoch": manifest.epoch,
            "levels": manifest.level_report(),
            "counters": counters,
        }

    # ------------------------------------------------------------------
    # shape

    @property
    def row_count(self) -> int:
        if self.text_rows is not None:
            return len(self.text_rows)
        return sum(tile.row_count for tile in self.tiles)

    # ------------------------------------------------------------------
    # incremental inserts (Section 3.2 / 4.7)

    def insert(self, document: object) -> None:
        """Append one document.

        Documents accumulate in an insert buffer; once ``tile_size``
        tuples arrived, the buffer is sealed into a new tile (with
        mining/extraction for extracting formats).  Call
        :meth:`flush_inserts` to seal a partial buffer — e.g. before a
        scan that must observe the fresh tuples.
        """
        if self.text_rows is not None:
            row = (json.dumps(document) if not isinstance(document, str)
                   else document)
            with self._buffer_lock:
                self.text_rows.append(row)
            return
        parsed = (json.loads(document) if isinstance(document, str)
                  else document)
        with self._buffer_lock:
            self._insert_buffer.append(parsed)
            full = len(self._insert_buffer) >= self.config.tile_size
        if full and self.auto_seal:
            self.flush_inserts()

    def insert_many(self, documents) -> None:
        for document in documents:
            self.insert(document)

    def flush_inserts(self, append_guard=None) -> None:
        """Seal the insert buffer into a new tile (no-op when empty).

        The new tile is only appended once fully built, mirroring the
        paper's visibility rule ("the tile is visible to scanners only
        once it is fully created").  Safe to call from any thread:
        sealers are serialized and the expensive mining/extraction runs
        without blocking concurrent :meth:`insert` calls.

        *append_guard*, when given, is a context manager held around
        the instant the finished tile becomes visible (tiles-list
        append + statistics merge) — the server passes its per-table
        writer lock here so sealing never races a scan.
        """
        if self.text_rows is not None:
            return
        # seal only what was pending at entry: under sustained ingest a
        # buffer that refills as fast as it drains must not trap the
        # flusher (and with it a query's _prepare, or the whole server
        # pool) in an endless chase of the writers.  The budget probe
        # takes the seal lock so it first waits out an in-flight seal,
        # whose documents are momentarily in neither buffer nor tiles.
        with self._seal_lock:
            with self._buffer_lock:
                budget = len(self._insert_buffer)
        while budget > 0:
            with self._seal_lock:
                with self._buffer_lock:
                    if not self._insert_buffer:
                        return
                    # one tile never exceeds tile_size tuples — a burst
                    # of inserts that outran the sealer is cut into
                    # properly-sized tiles instead of one oversized one
                    # (tile boundaries are permanent: Section 3.2
                    # reordering permutes rows *between* tiles but never
                    # re-draws the boundaries themselves)
                    take = min(len(self._insert_buffer),
                               self.config.tile_size)
                    budget -= take
                    documents = self._insert_buffer[:take]
                    self._insert_buffer = self._insert_buffer[take:]
                    # only sealers mutate self.tiles, and they hold
                    # _seal_lock, so these reads are stable
                    tile_number = (self.tiles[-1].header.tile_number + 1
                                   if self.tiles else 0)
                    first_row = sum(tile.row_count for tile in self.tiles)
                jsonb_rows = [jsonb_encode(document)
                              for document in documents]
                tile = self.adopt_tile(build_tile(
                    documents, jsonb_rows, self.config,
                    tile_number, first_row,
                    mine=self.format.extracts_columns))
                guard = append_guard() if callable(append_guard) \
                    else append_guard
                if guard is not None:
                    with guard:
                        with self._buffer_lock:
                            self.tiles.append(tile)
                            self.statistics.absorb_tile(
                                tile_number, tile.header.statistics)
                            self._bump_manifest_locked()
                else:
                    with self._buffer_lock:
                        self.tiles.append(tile)
                        self.statistics.absorb_tile(
                            tile_number, tile.header.statistics)
                        self._bump_manifest_locked()
            for hook in self._seal_hooks:
                hook(self, tile)
            self._fire_event("seal", tile)

    def add_seal_hook(self, hook: Callable[["Relation", Tile], None]) -> None:
        self._seal_hooks.append(hook)

    def add_event_hook(self,
                       hook: Callable[[str, "Relation", object], None]) -> None:
        """Subscribe to storage reorganization events.  *hook* receives
        ``(event, relation, payload)`` where event is one of ``"seal"``
        (payload: the new tile), ``"update"`` (payload: the patched
        tile), ``"recompute"`` (payload: the rebuilt tile) and
        ``"reorganize"`` (payload: the partition index), ``"compact"``
        (payload: a dict with the merged tile, its level and the input
        tile numbers) and ``"evict"`` (payload: the paged-out
        handle)."""
        if hook not in self._event_hooks:
            self._event_hooks.append(hook)

    def _fire_event(self, event: str, payload: object) -> None:
        for hook in self._event_hooks:
            try:
                hook(event, self, payload)
            except Exception:
                pass  # observers must never break the foreground path

    @contextmanager
    def seal_paused(self):
        """No tile can seal while inside: waits out an in-flight
        :meth:`flush_inserts` and blocks new ones.  A checkpoint wraps
        its snapshot in this so no document is momentarily in neither
        the buffer nor the tiles."""
        with self._seal_lock:
            yield

    def snapshot_insert_buffer(self) -> List[object]:
        """A consistent copy of the pending (unsealed) documents."""
        with self._buffer_lock:
            return list(self._insert_buffer)

    @property
    def pending_inserts(self) -> int:
        return len(self._insert_buffer)

    def __len__(self) -> int:
        return self.row_count

    def tile_of_row(self, row_id: int) -> TileHandle:
        for tile in self.tiles:
            if tile.first_row <= row_id < tile.first_row + tile.row_count:
                return tile
        raise StorageError(f"row {row_id} out of range in {self.name}")

    # ------------------------------------------------------------------
    # row access (point lookups; scans go through the engine)

    def document(self, row_id: int) -> object:
        """Materialize the document stored at *row_id*."""
        if self.text_rows is not None:
            return json.loads(self.text_rows[row_id])
        handle = self.tile_of_row(row_id)
        with handle.pinned() as tile:
            return jsonb_decode(tile.jsonb_rows[row_id - handle.first_row])

    def documents(self) -> Iterator[object]:
        for row_id in range(self.row_count):
            yield self.document(row_id)

    # ------------------------------------------------------------------
    # updates (Section 4.7)

    def update(self, row_id: int, new_document: object) -> None:
        """Replace the document at *row_id*, patching extracted columns
        in place and keeping skipping metadata correct."""
        if self.text_rows is not None:
            self.text_rows[row_id] = json.dumps(new_document)
            return
        handle = self.tile_of_row(row_id)
        local = row_id - handle.first_row
        with handle.pinned() as tile:
            # the payload is about to diverge from its on-disk segment:
            # a dirty handle is never evicted, so the patch can't be
            # lost to a reload of stale bytes
            handle.mark_dirty()
            tile.jsonb_rows[local] = jsonb_encode(new_document)
            # the only in-place tile mutation in the system: resolved
            # fallback columns cached for this tile are now stale
            GLOBAL_TILE_CACHE.invalidate_tile(handle.uid)
            if not self.format.extracts_columns:
                self._fire_event("update", handle)
                return

            overlapping = 0
            for path, vector in tile.columns.items():
                meta = tile.header.columns[path]
                raw = path.lookup(new_document)
                value = _materialize_value(raw, meta)
                if value is None:
                    # absent key or type outlier: NULL marks "consult JSONB"
                    vector.null_mask[local] = True
                    meta.nullable = True
                    if raw is not None:
                        meta.has_type_conflicts = True
                else:
                    vector.null_mask[local] = False
                    vector.data[local] = value
                    overlapping += 1
                    # widen the tile's zone map / sketch; bounds may only
                    # grow (stale-wide bounds are safe for pruning)
                    tile.header.statistics.column(path).observe(value)
                    tile.header.widen_block_bounds(path, local, value)

            # every access path of the new document must be visible to
            # skipping, otherwise changed tiles could be skipped
            # incorrectly
            for path, _jtype in collect_key_paths(
                    new_document, self.config.max_array_elements):
                if path not in tile.columns:
                    tile.header.record_unextracted(path)

        self._fire_event("update", handle)
        if overlapping == 0:
            # outlier document: no overlap with the extracted keys
            count = self._outlier_counts.get(handle.tile_number, 0) + 1
            self._outlier_counts[handle.tile_number] = count
            if count > handle.row_count // 2:
                self.recompute_tile(handle)

    def recompute_tile(self, tile: TileHandle, append_guard=None) -> None:
        """Re-run extraction for one tile after heavy updates.

        *append_guard* (same contract as in :meth:`flush_inserts`) is
        held around the instant the rebuilt tile replaces the stale one,
        so a concurrent scan never observes a half-swapped tiles list.
        Relation statistics are rebuilt from scratch — ``absorb_tile``
        accumulates, so re-absorbing the rebuilt tile into the old
        aggregate would double-count its rows.

        The stale tile is pinned only while its JSONB heap is read; the
        expensive mining/extraction runs against plain byte strings, so
        the residency budget sees at most one extra resident tile.
        """
        with tile.pinned() as payload:
            jsonb_rows = list(payload.jsonb_rows)
        documents = [jsonb_decode(row) for row in jsonb_rows]
        rebuilt = self.adopt_tile(build_tile(
            documents, jsonb_rows, self.config,
            tile.tile_number, tile.first_row,
            mine=self.format.extracts_columns))
        guard = append_guard() if callable(append_guard) else append_guard
        with (guard if guard is not None else nullcontext()):
            with self._buffer_lock:
                try:
                    index = self.tiles.index(tile)
                except ValueError:
                    return  # replaced concurrently; nothing left to do
                self.tiles[index] = rebuilt
                self._rebuild_statistics_locked()
                self._bump_manifest_locked()
        self._outlier_counts.pop(tile.tile_number, None)
        # the rebuilt tile has a fresh uid; entries of the replaced one
        # can never be served again, so reclaim their memory (and the
        # replaced handle's residency charge) eagerly — retired, not
        # discarded, so a scan holding an older manifest snapshot can
        # still pin the replaced payload
        GLOBAL_TILE_CACHE.invalidate_tile(tile.uid)
        GLOBAL_TILE_STORE.retire(tile)
        # a recomputed tile changes its partition's content: the
        # maintenance health tracker resets the partition's record so
        # it becomes re-eligible for Section 3.2 reordering
        self._fire_event("recompute", rebuilt)

    def _rebuild_statistics_locked(self) -> None:
        """Recompute :class:`TableStatistics` from the current tiles.
        Callers hold ``_buffer_lock`` (the tiles list must be stable)."""
        statistics = TableStatistics()
        for tile in self.tiles:
            statistics.absorb_tile(tile.header.tile_number,
                                   tile.header.statistics)
        self.statistics = statistics

    # ------------------------------------------------------------------
    # partitions (Section 3.2) — maintenance works partition-at-a-time

    @property
    def partition_count(self) -> int:
        """Number of (possibly partial) partitions of sealed tiles."""
        if not self.tiles:
            return 0
        return math.ceil(len(self.tiles) / self.config.partition_size)

    def partition_tiles(self, index: int) -> List[TileHandle]:
        """Snapshot of the sealed tiles in partition *index*."""
        size = self.config.partition_size
        with self._buffer_lock:
            return list(self.tiles[index * size : (index + 1) * size])

    def reorganize_partition(self, index: int, append_guard=None) -> bool:
        """Re-run Section 3.2 tuple reordering across one sealed
        partition, then rebuild its tiles with full mining/extraction.

        Returns True when the partition's tiles were replaced, False
        when nothing changed: identity order (reordering found no
        improvement), fewer than two sealed tiles, a format without
        per-tile local schemas, or a relation with array children
        (their ``_parent_row`` links would dangle after a permutation).

        Concurrency contract: optimistic.  The expensive
        decode/mine/extract work runs without any relation lock, so
        concurrent scans and seals proceed; the rebuilt tiles are
        spliced in atomically under *append_guard* (the server passes
        its per-table writer lock) after verifying — by identity — that
        no concurrent recompute replaced a tile of the partition in the
        meantime (sealers only ever append past it).  On a lost race
        the method gives up and returns False; the caller retries in a
        later cycle.  Concurrent in-place ``update`` calls on the
        partition must be excluded by the caller — the server exposes
        no update command, and the embedded daemon reorganizes between
        foreground operations.
        """
        from repro.mining.dictionary import encode_documents, subset_dictionary
        from repro.tiles.reorder import apply_order, reorder_transactions

        if not self.format.uses_local_schemas or self.children:
            return False
        size = self.config.partition_size
        lo = index * size
        old_tiles = self.partition_tiles(index)
        if len(old_tiles) < 2:
            return False
        occupancy = [tile.row_count for tile in old_tiles]
        # pin one tile at a time while draining its JSONB heap — the
        # byte strings stay alive by reference, so the reorder itself
        # runs unpinned and the budget never needs the whole partition
        # resident at once
        jsonb_rows: List[bytes] = []
        for handle in old_tiles:
            with handle.pinned() as payload:
                jsonb_rows.extend(payload.jsonb_rows)
        documents = [jsonb_decode(row) for row in jsonb_rows]
        dictionary, transactions = encode_documents(
            documents, self.config.max_array_elements)
        order = reorder_transactions(transactions, self.config,
                                     occupancy=occupancy)
        if order == list(range(len(order))):
            return False
        documents = apply_order(documents, order)
        jsonb_rows = apply_order(jsonb_rows, order)
        transactions = apply_order(transactions, order)
        rebuilt: List[TileHandle] = []
        offset = 0
        for old, count in zip(old_tiles, occupancy):
            encoded = subset_dictionary(
                dictionary, transactions[offset : offset + count])
            rebuilt.append(self.adopt_tile(build_tile(
                documents[offset : offset + count],
                jsonb_rows[offset : offset + count],
                self.config, old.tile_number, old.first_row,
                encoded=encoded)))
            offset += count
        guard = append_guard() if callable(append_guard) else append_guard
        with (guard if guard is not None else nullcontext()):
            with self._buffer_lock:
                current = self.tiles[lo : lo + len(old_tiles)]
                if len(current) != len(old_tiles) or any(
                        now is not then
                        for now, then in zip(current, old_tiles)):
                    return False  # lost the race: retry in a later cycle
                self.tiles[lo : lo + len(old_tiles)] = rebuilt
                self._bump_manifest_locked()
                # relation statistics are NOT rebuilt: a reorganization
                # permutes rows within the partition, so the relation's
                # multiset of (path, value) pairs — everything the
                # aggregate describes — is unchanged.  (Per-tile zone
                # maps were rebuilt fresh inside build_tile.)  A full
                # rebuild here would grind O(tiles) histogram merges
                # inside the write-locked splice on every cycle.
        for old in old_tiles:
            self._outlier_counts.pop(old.tile_number, None)
            GLOBAL_TILE_CACHE.invalidate_tile(old.uid)
            GLOBAL_TILE_STORE.retire(old)
        self._fire_event("reorganize", index)
        return True

    # ------------------------------------------------------------------
    # leveled compaction (repro.lsm; DESIGN.md §8)

    def compact_tiles(self, start_number: int, count: int,
                      append_guard=None) -> bool:
        """Merge *count* adjacent same-level tiles starting at the tile
        numbered *start_number* into one tile of the next level,
        re-mining frequent itemsets over the union of their documents.

        Returns True when the merge committed, False on a no-op: the
        run no longer exists (tiles were rebuilt, merged or renumbered
        since planning — the crash-recovery replay path relies on this
        being a clean no-op), mismatched levels, or a lost race.

        Row order is preserved — the merged tile is the concatenation
        of its inputs — so global row ids, morsel spans, child
        ``_parent_row`` links and the cluster's canonical block layout
        are untouched.  This is why compaction is safe on cluster
        shards even though §3.2 reordering is forced off for them.

        Concurrency contract: optimistic, like
        :meth:`reorganize_partition`.  The expensive decode/mine/build
        runs without any relation lock; the splice happens under
        *append_guard* + ``_buffer_lock`` after re-verifying every
        input by identity.  Inside the guarded section, *before* the
        manifest swap commits, every input's resolved-column cache
        entries and TileStore residency are invalidated by uid — the
        same hole class as seal/recompute: a stale cached column must
        never be servable once the merged tile is visible.
        """
        if self.text_rows is not None or count < 2:
            return False
        with self._buffer_lock:
            start = next((index for index, tile in enumerate(self.tiles)
                          if tile.header.tile_number == start_number),
                         None)
            if start is None:
                return False
            old_tiles = list(self.tiles[start : start + count])
        if len(old_tiles) < count:
            return False
        level = old_tiles[0].header.level
        if any(tile.header.level != level for tile in old_tiles):
            return False  # the run dissolved (e.g. a concurrent merge)
        # pin one input at a time while draining its JSONB heap — the
        # byte strings stay alive by reference, so mining/extraction
        # run unpinned and the residency budget never needs the whole
        # run resident at once (reorganize's discipline).  The drained
        # payloads are retained so retiring the inputs below never has
        # to reload one that was evicted in the meantime.
        jsonb_rows: List[bytes] = []
        retained: Dict[int, object] = {}
        for handle in old_tiles:
            with handle.pinned() as payload:
                jsonb_rows.extend(payload.jsonb_rows)
                retained[id(handle)] = payload
        documents = [jsonb_decode(row) for row in jsonb_rows]
        merged = self.adopt_tile(build_tile(
            documents, jsonb_rows, self.config,
            old_tiles[0].tile_number, old_tiles[0].first_row,
            mine=self.format.extracts_columns, level=level + 1))
        if _COMPACT_COMMIT_BARRIER is not None:
            # crash-injection point for recovery tests: the merged tile
            # exists but the manifest still points at the old run
            _COMPACT_COMMIT_BARRIER(self, old_tiles, merged)
        guard = append_guard() if callable(append_guard) else append_guard
        with (guard if guard is not None else nullcontext()):
            with self._buffer_lock:
                try:
                    index = self.tiles.index(old_tiles[0])
                except ValueError:
                    return False  # lost the race: retry in a later cycle
                current = self.tiles[index : index + count]
                if len(current) != count or any(
                        now is not then
                        for now, then in zip(current, old_tiles)):
                    return False
                # satellite fix: invalidate the inputs' cached columns
                # and residency BEFORE the swap commits — the guard
                # excludes readers, so nothing can repopulate between
                # here and the splice, and no stale entry survives into
                # the post-merge world.  retire (not discard) keeps
                # each input's payload alive for scans that enumerated
                # an older manifest snapshot and pin it after the swap.
                for old in old_tiles:
                    GLOBAL_TILE_CACHE.invalidate_tile(old.uid)
                    GLOBAL_TILE_STORE.retire(old, retained.get(id(old)))
                self.tiles[index : index + count] = [merged]
                self._rebuild_statistics_locked()
                self._bump_manifest_locked()
                self.lsm_counters["merges"] += 1
                self.lsm_counters["docs_rewritten"] += len(documents)
                self.lsm_counters["bytes_written"] += merged.nbytes
        for old in old_tiles:
            self._outlier_counts.pop(old.tile_number, None)
        self._fire_event("compact", {
            "tile": merged, "level": level + 1,
            "inputs": [tile.header.tile_number for tile in old_tiles]})
        return True

    # ------------------------------------------------------------------
    # size accounting (Table 6)

    def size_report(self) -> Dict[str, int]:
        """Bytes per representation: raw JSON text, JSONB, extracted
        tile columns, and LZ4-compressed tile columns.

        ``tiles`` / ``lz4_tiles`` use the shared-variable-length-region
        accounting of Umbra (Section 4.7): extracted string columns
        store offsets, not payload copies.  ``tiles_standalone`` is the
        fully-materialized alternative for comparison.

        A relation with zero sealed tiles (empty table, or buffer-only
        state where every document still sits in the insert buffer)
        reports well-defined zeros for every representation — pending
        documents have no storage representation yet.

        ``resident_bytes`` / ``disk_bytes`` separate what the tile
        store currently holds in memory from what lives in the
        relation's ``.jtile`` segments — the logical representation
        sizes above deliberately do not distinguish the two.  They are
        sampled *before* the logical accounting below, because that
        accounting pins each tile (one at a time) and would otherwise
        make everything look resident.
        """
        from repro.storage.compression import compress

        report = {"json": 0, "jsonb": 0, "tiles": 0, "tiles_standalone": 0,
                  "lz4_tiles": 0, "resident_bytes": 0, "disk_bytes": 0}
        if self.text_rows is not None:
            report["json"] = sum(len(row.encode("utf-8")) for row in self.text_rows)
            return report
        if not self.tiles and not self.children:
            return report
        report["resident_bytes"] = sum(
            handle.nbytes for handle in self.tiles if handle.resident)
        report["disk_bytes"] = sum(
            handle.disk_bytes for handle in self.tiles)
        for handle in self.tiles:
            with handle.pinned() as tile:
                report["jsonb"] += tile.jsonb_size_bytes()
                report["tiles"] += tile.size_bytes(shared_strings=True)
                report["tiles_standalone"] += tile.size_bytes()
                for column in tile.columns.values():
                    report["lz4_tiles"] += len(compress(
                        column.raw_bytes(shared_strings=True)))
        for child in self.children.values():
            child_report = child.size_report()
            for key in report:
                report[key] += child_report[key]
        return report

    def residency_report(self) -> Dict[str, int]:
        """Cheap (header-only, never faults a payload) residency view:
        resident vs on-disk bytes and tile counts, children included."""
        report = {"resident_bytes": 0, "disk_bytes": 0,
                  "resident_tiles": 0, "dirty_tiles": 0, "tiles": 0}
        for handle in self.tiles:
            report["tiles"] += 1
            report["disk_bytes"] += handle.disk_bytes
            if handle.resident:
                report["resident_tiles"] += 1
                report["resident_bytes"] += handle.nbytes
            if handle.dirty:
                report["dirty_tiles"] += 1
        for child in self.children.values():
            child_report = child.residency_report()
            for key in report:
                report[key] += child_report[key]
        return report

    def extracted_fraction(self) -> float:
        """Fraction of (tile, frequent path) pairs that got materialized;
        a robustness metric used by tests, examples and the maintenance
        health tracker.

        Well-defined 0.0 on a relation with zero sealed tiles (empty
        table or buffer-only state): nothing has been extracted and
        nothing has been given up on, so the metric must neither divide
        by zero nor report a spurious 1.0.
        """
        if not self.tiles:
            return 0.0
        # header.columns mirrors the payload's column dict key-for-key,
        # so this never needs to fault a paged-out tile in
        extracted = sum(len(tile.header.columns) for tile in self.tiles)
        seen = sum(len(tile.header.key_counts) for tile in self.tiles)
        return extracted / max(1, seen)

    def tile_extraction_fraction(self, tile) -> float:
        """Per-tile extraction metric the health tracker aggregates:
        extracted columns over frequent key paths seen in the tile.
        Header-only, so polling it never faults a paged-out tile in."""
        if not tile.header.key_counts:
            return 1.0 if not tile.header.columns else 0.0
        return len(tile.header.columns) / len(tile.header.key_counts)

    def to_arrow(self, paths=None, options=None):
        """Export the relation as a ``pyarrow.Table`` (zero-copy for
        fixed-width columns; see ``repro.engine.arrow_export``).

        *paths* is an optional ``[(KeyPath, ColumnType), ...]``
        projection; by default every extracted path across the sealed
        tiles is exported under its header type (cross-tile type
        conflicts degrade to JSON text).  Buffered inserts are sealed
        first so the export observes every acknowledged document.
        Raises ``ExecutionError`` when ``pyarrow`` is not installed —
        the dependency is strictly optional.
        """
        from repro.engine.arrow_export import relation_to_arrow

        self.flush_inserts()
        return relation_to_arrow(self, paths=paths, options=options)

    def describe(self) -> str:
        lines = [f"relation {self.name}: {self.row_count} rows, "
                 f"format={self.format.value}, tiles={len(self.tiles)}"]
        for child_name, child in self.children.items():
            lines.append(f"  child[{child_name}]: {child.row_count} rows")
        return "\n".join(lines)
