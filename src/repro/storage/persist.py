"""On-disk persistence for relations.

Format v2 (``JTIL2``) lays a relation out for *random* access so the
tile store can page individual tiles in and out:

* magic ``JTIL2`` (5 bytes),
* the blobs, streamed in write order (JSONB rows, numpy column data,
  null bitmaps, HyperLogLog registers, bloom bits),
* the JSON *catalog* (a footer): structural metadata (format, config,
  tiles, extracted columns, statistics, bloom filters) where every
  bulk payload is replaced by a blob id, plus ``blob_index`` — the
  ``[offset, length]`` of every blob,
* a little-endian u64 with the catalog length, then the magic again
  as a trailer (its presence proves the file is complete).

Because every blob is independently addressable, ``load_relation``
reads only the catalog eagerly: tile headers, statistics and sketches
are restored up front (they drive planning and tile skipping), while
each tile's columns and JSONB heap stay behind a
:class:`TileSegment` that the :mod:`~repro.storage.tilestore` faults
in on first pin.  The v1 format (leading catalog with ``blob_sizes``,
blobs concatenated after it) is still readable — its offsets are just
the running sum of the sizes — and loads through the same lazy path.

Durability: files are written to a temp sibling, fsynced, atomically
renamed into place, and the containing directory is fsynced, so a
crash mid-checkpoint can never leave a torn ``.jtile`` where a
complete one used to be.
"""

from __future__ import annotations

import json
import os
import struct
from pathlib import Path
from typing import BinaryIO, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.core.jsonpath import KeyPath
from repro.core.types import ColumnType, JsonType
from repro.errors import StorageError
from repro.stats.bloom import BloomFilter
from repro.stats.hyperloglog import HyperLogLog
from repro.stats.table_stats import (
    ColumnStatistics,
    TableStatistics,
    TileStatistics,
)
from repro.storage.column import ColumnVector, dtype_for
from repro.storage.formats import StorageFormat
from repro.storage.relation import Relation
from repro.storage.tilestore import GLOBAL_TILE_STORE, TileHandle, TileStore
from repro.tiles.extractor import ExtractionConfig
from repro.tiles.header import ExtractedColumn, TileHeader
from repro.tiles.tile import Tile

MAGIC_V1 = b"JTIL1"
MAGIC = b"JTIL2"


class _BlobWriter:
    """Streams blobs straight into the file being written, recording
    the ``[offset, length]`` of each — tiles are pinned one at a time
    during a save, so peak memory stays one tile, not one relation."""

    def __init__(self, handle: BinaryIO):
        self._handle = handle
        self.index: List[List[int]] = []

    def add(self, data: bytes) -> int:
        self.index.append([self._handle.tell(), len(data)])
        self._handle.write(data)
        return len(self.index) - 1


class _BlobSource:
    """Random access to the blobs of one ``.jtile`` file.

    Reads use ``os.pread`` so concurrent tile loads never contend on a
    shared file position.  The open descriptor keeps the *inode* alive:
    when a checkpoint atomically replaces the path, segments bound to
    the old file keep reading consistent bytes until they are re-bound
    to the new snapshot.
    """

    def __init__(self, path: Union[str, Path], index: List[List[int]]):
        self.path = Path(path)
        self.index = index
        self._file = self.path.open("rb")

    def length(self, blob_id: int) -> int:
        return self.index[blob_id][1]

    def __getitem__(self, blob_id: int) -> bytes:
        offset, length = self.index[blob_id]
        data = os.pread(self._file.fileno(), length, offset)
        if len(data) != length:
            raise StorageError(f"{self.path} is truncated (blob {blob_id})")
        return data

    def close(self) -> None:
        self._file.close()


class TileSegment:
    """The on-disk footprint of one tile: its catalog entry plus the
    blob source to read payload bytes from.  ``nbytes`` (the payload
    blobs' total length) is what the residency budget charges."""

    def __init__(self, meta: dict, source: _BlobSource):
        self.meta = meta
        self.source = source
        blob_ids = [meta["rows"]]
        for column_meta in meta["columns"]:
            vector = column_meta["vector"]
            blob_ids.append(vector["data"])
            blob_ids.append(vector["nulls"])
        self.nbytes = sum(source.length(blob_id) for blob_id in blob_ids)

    def load(self, header: TileHeader, first_row: int) -> Tile:
        """Fault the payload in (columns + JSONB heap) under *header*."""
        return _restore_tile_payload(self.meta, header, self.source,
                                     first_row)


def _encode_rows(rows: List[bytes]) -> bytes:
    parts = [struct.pack("<I", len(rows))]
    for row in rows:
        parts.append(struct.pack("<I", len(row)))
        parts.append(row)
    return b"".join(parts)


def _decode_rows(blob: bytes) -> List[bytes]:
    (count,) = struct.unpack_from("<I", blob, 0)
    rows = []
    pos = 4
    for _ in range(count):
        (length,) = struct.unpack_from("<I", blob, pos)
        pos += 4
        rows.append(blob[pos : pos + length])
        pos += length
    return rows


def _encode_object_column(data: np.ndarray) -> bytes:
    parts = [struct.pack("<I", len(data))]
    for item in data:
        if item is None:
            parts.append(b"\xff\xff\xff\xff")
        else:
            encoded = (item if isinstance(item, bytes)
                       else str(item).encode("utf-8"))
            parts.append(struct.pack("<I", len(encoded)))
            parts.append(encoded)
    return b"".join(parts)


def _decode_object_column(blob: bytes) -> np.ndarray:
    (count,) = struct.unpack_from("<I", blob, 0)
    pos = 4
    out = np.empty(count, dtype=object)
    for index in range(count):
        (length,) = struct.unpack_from("<I", blob, pos)
        pos += 4
        if length == 0xFFFFFFFF:
            out[index] = None
        else:
            out[index] = blob[pos : pos + length].decode("utf-8")
            pos += length
    return out


def _column_meta(vector: ColumnVector, blobs: _BlobWriter) -> dict:
    if vector.data.dtype == object:
        data_blob = blobs.add(_encode_object_column(vector.data))
        layout = "object"
    else:
        data_blob = blobs.add(vector.data.tobytes())
        layout = "raw"
    return {
        "type": vector.type.value,
        "layout": layout,
        "length": len(vector),
        "data": data_blob,
        "nulls": blobs.add(np.packbits(vector.null_mask).tobytes()),
    }


def _restore_column(meta: dict, blobs) -> ColumnVector:
    column_type = ColumnType(meta["type"])
    length = meta["length"]
    if meta["layout"] == "object":
        data = _decode_object_column(blobs[meta["data"]])
    else:
        data = np.frombuffer(blobs[meta["data"]],
                             dtype=dtype_for(column_type)).copy()
    nulls = np.unpackbits(
        np.frombuffer(blobs[meta["nulls"]], dtype=np.uint8),
        count=length).astype(bool) if length else np.zeros(0, dtype=bool)
    return ColumnVector(column_type, data[:length], nulls)


def _sketch_meta(sketch: HyperLogLog, blobs: _BlobWriter) -> dict:
    return {"precision": sketch.precision,
            "registers": blobs.add(sketch.registers.tobytes())}


def _restore_sketch(meta: dict, blobs) -> HyperLogLog:
    sketch = HyperLogLog(meta["precision"])
    sketch.registers = np.frombuffer(blobs[meta["registers"]],
                                     dtype=np.uint8).copy()
    return sketch


def _histogram_meta(histogram, blobs: _BlobWriter) -> Optional[dict]:
    if histogram is None:
        return None
    return {"boundaries": blobs.add(histogram.boundaries.tobytes()),
            "counts": blobs.add(histogram.counts.tobytes())}


def _restore_histogram(meta: Optional[dict], blobs):
    if meta is None:
        return None
    from repro.stats.histogram import EquiDepthHistogram

    boundaries = np.frombuffer(blobs[meta["boundaries"]],
                               dtype=np.float64).copy()
    counts = np.frombuffer(blobs[meta["counts"]], dtype=np.float64).copy()
    return EquiDepthHistogram(boundaries, counts)


def _column_stats_meta(stats: ColumnStatistics, blobs: _BlobWriter) -> dict:
    return {
        "sketch": _sketch_meta(stats.sketch, blobs),
        "non_null": stats.non_null_count,
        "min": stats.min_value,
        "max": stats.max_value,
        "histogram": _histogram_meta(stats.histogram, blobs),
    }


def _restore_column_stats(meta: dict, blobs) -> ColumnStatistics:
    stats = ColumnStatistics()
    stats.sketch = _restore_sketch(meta["sketch"], blobs)
    stats.non_null_count = meta["non_null"]
    stats.min_value = meta["min"]
    stats.max_value = meta["max"]
    stats.histogram = _restore_histogram(meta.get("histogram"), blobs)
    return stats


def _bloom_meta(bloom: BloomFilter, blobs: _BlobWriter) -> dict:
    return {"bits": blobs.add(bloom.bits.tobytes()),
            "num_bits": bloom.num_bits, "num_hashes": bloom.num_hashes}


def _restore_bloom(meta: dict, blobs) -> BloomFilter:
    bloom = BloomFilter()
    bloom.num_bits = meta["num_bits"]
    bloom.num_hashes = meta["num_hashes"]
    bloom.bits = np.frombuffer(blobs[meta["bits"]], dtype=np.uint8).copy()
    return bloom


def _tile_payload_meta(tile: Tile, blobs: _BlobWriter) -> dict:
    header = tile.header
    columns = []
    for path, column in tile.columns.items():
        meta = header.columns[path]
        columns.append({
            "path": str(path),
            "json_type": meta.json_type.value,
            "column_type": meta.column_type.value,
            "conflicts": meta.has_type_conflicts,
            "nullable": meta.nullable,
            "datetime": meta.is_datetime,
            "vector": _column_meta(column, blobs),
        })
    return {
        "tile_number": header.tile_number,
        "row_count": header.row_count,
        "first_row": tile.first_row,
        "max_array_elements": header.max_array_elements,
        "level": header.level,
        "key_counts": header.key_counts,
        "bloom": _bloom_meta(header.unextracted_paths, blobs),
        "stats_keys": header.statistics.key_counts,
        "stats_columns": {
            str(path): _column_stats_meta(stats, blobs)
            for path, stats in header.statistics.columns.items()
        },
        "columns": columns,
        # per-block zone maps (DESIGN.md §9); entries are JSON-plain
        # ([min, max] lists, [] for all-NULL, null for incomparable)
        "block_rows": header.block_bounds_rows,
        "block_bounds": {str(path): entries
                         for path, entries in header.block_bounds.items()},
        "rows": blobs.add(_encode_rows(tile.jsonb_rows)),
    }


def _tile_meta(tile, blobs: _BlobWriter) -> dict:
    # *tile* is a TileHandle on every normal path; raw Tiles are still
    # accepted so hand-assembled relations (tests, tools) serialize.
    if isinstance(tile, TileHandle):
        with tile.pinned() as payload:
            return _tile_payload_meta(payload, blobs)
    return _tile_payload_meta(tile, blobs)


def _restore_tile_header(meta: dict, blobs) -> TileHeader:
    """The eagerly-resident part of a tile: schema, blooms, zone maps —
    everything planning and tile skipping consult."""
    header = TileHeader(meta["tile_number"], meta["row_count"],
                        max_array_elements=meta["max_array_elements"],
                        # pre-LSM snapshots have no level key: level 0
                        level=int(meta.get("level", 0)))
    header.key_counts = dict(meta["key_counts"])
    header.unextracted_paths = _restore_bloom(meta["bloom"], blobs)
    header.statistics = TileStatistics(row_count=meta["row_count"])
    header.statistics.key_counts = dict(meta["stats_keys"])
    for path_text, stats_meta in meta["stats_columns"].items():
        header.statistics.columns[KeyPath.parse(path_text)] = \
            _restore_column_stats(stats_meta, blobs)
    for column_meta in meta["columns"]:
        header.add_column(ExtractedColumn(
            path=KeyPath.parse(column_meta["path"]),
            json_type=JsonType(column_meta["json_type"]),
            column_type=ColumnType(column_meta["column_type"]),
            has_type_conflicts=column_meta["conflicts"],
            nullable=column_meta["nullable"],
            is_datetime=column_meta["datetime"],
        ))
    # pre-§9 snapshots carry no block bounds: block pruning simply
    # stays tile-granular for them
    header.block_bounds_rows = int(meta.get("block_rows", 0))
    for path_text, entries in (meta.get("block_bounds") or {}).items():
        header.block_bounds[KeyPath.parse(path_text)] = entries
    return header


def _restore_tile_payload(meta: dict, header: TileHeader, blobs,
                          first_row: int) -> Tile:
    """The demand-loaded part: column vectors and the JSONB heap."""
    columns = {}
    for column_meta in meta["columns"]:
        columns[KeyPath.parse(column_meta["path"])] = \
            _restore_column(column_meta["vector"], blobs)
    rows = _decode_rows(blobs[meta["rows"]])
    return Tile(header, columns, rows, first_row)


def _table_stats_meta(stats: TableStatistics, blobs: _BlobWriter) -> dict:
    return {
        "row_count": stats.row_count,
        "frequencies": {key: list(entry)
                        for key, entry in stats.frequencies._slots.items()},
        "sketches": {
            str(path): {"sketch": _sketch_meta(sketch, blobs), "tile": tile}
            for path, (sketch, tile) in stats._sketches.items()
        },
        "bounds": {str(path): list(bounds)
                   for path, bounds in stats._bounds.items()},
        "histograms": {
            str(path): _histogram_meta(histogram, blobs)
            for path, histogram in stats._histograms.items()
        },
    }


def _restore_table_stats(meta: dict, blobs) -> TableStatistics:
    stats = TableStatistics()
    stats.row_count = meta["row_count"]
    for key, (count, tile) in meta["frequencies"].items():
        stats.frequencies._slots[key] = (count, tile)
    for path_text, entry in meta["sketches"].items():
        stats._sketches[KeyPath.parse(path_text)] = (
            _restore_sketch(entry["sketch"], blobs), entry["tile"])
    for path_text, bounds in meta["bounds"].items():
        stats._bounds[KeyPath.parse(path_text)] = tuple(bounds)
    for path_text, histogram_meta in meta.get("histograms", {}).items():
        restored = _restore_histogram(histogram_meta, blobs)
        if restored is not None:
            stats._histograms[KeyPath.parse(path_text)] = restored
    return stats


def _config_meta(config: ExtractionConfig) -> dict:
    return {
        "tile_size": config.tile_size,
        "partition_size": config.partition_size,
        "threshold": config.threshold,
        "mining_budget": config.mining_budget,
        "max_array_elements": config.max_array_elements,
        "detect_dates": config.detect_dates,
        "enable_reordering": config.enable_reordering,
    }


def _relation_meta(relation: Relation, blobs: _BlobWriter,
                   rebinds: Optional[list] = None) -> dict:
    meta = {
        "name": relation.name,
        "format": relation.format.value,
        "config": _config_meta(relation.config),
        "statistics": _table_stats_meta(relation.statistics, blobs),
        "array_paths": [str(path) for path in relation.array_paths],
        "children": {
            path_text: _relation_meta(child, blobs, rebinds)
            for path_text, child in relation.children.items()
        },
    }
    if relation.text_rows is not None:
        meta["text_rows"] = blobs.add(_encode_rows(
            [row.encode("utf-8") for row in relation.text_rows]))
    else:
        tiles_meta = []
        for tile in relation.tiles:
            tile_meta = _tile_meta(tile, blobs)
            tiles_meta.append(tile_meta)
            if rebinds is not None and isinstance(tile, TileHandle):
                rebinds.append((tile, tile_meta))
        meta["tiles"] = tiles_meta
        # pending (unsealed) inserts round-trip as documents instead of
        # being force-sealed into an undersized tile at save time
        buffered = relation.snapshot_insert_buffer()
        if buffered:
            meta["insert_buffer"] = blobs.add(_encode_rows(
                [json.dumps(document, separators=(",", ":")).encode("utf-8")
                 for document in buffered]))
    return meta


def _restore_relation(meta: dict, source: _BlobSource,
                      store: TileStore) -> Relation:
    config = ExtractionConfig(**meta["config"])
    relation = Relation(meta["name"], StorageFormat(meta["format"]), config)
    relation.statistics = _restore_table_stats(meta["statistics"], source)
    relation.array_paths = [KeyPath.parse(p) for p in meta["array_paths"]]
    for path_text, child_meta in meta["children"].items():
        relation.children[path_text] = _restore_relation(
            child_meta, source, store)
    if "text_rows" in meta:
        relation.text_rows = [row.decode("utf-8") for row in
                              _decode_rows(source[meta["text_rows"]])]
    else:
        relation.text_rows = None
        for tile_meta in meta["tiles"]:
            header = _restore_tile_header(tile_meta, source)
            segment = TileSegment(tile_meta, source)
            handle = TileHandle.stored(header, tile_meta["first_row"],
                                       segment, store, relation.name)
            handle.owner = relation
            relation.tiles.append(handle)
        if "insert_buffer" in meta:
            relation._insert_buffer = [
                json.loads(row.decode("utf-8"))
                for row in _decode_rows(source[meta["insert_buffer"]])]
    return relation


def _fsync_directory(directory: Path) -> None:
    """Make a just-renamed file's directory entry durable."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir fds
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def save_relation(relation: Relation, path: Union[str, Path],
                  extra: Optional[dict] = None,
                  rebind: bool = True) -> int:
    """Write the relation (and its Tiles-* children) to *path*;
    returns the number of bytes written.

    The file is written to a temp sibling, fsynced, atomically renamed
    into place, and the directory entry fsynced, so a crash mid-save
    never leaves a torn ``.jtile`` behind.  Tiles are pinned one at a
    time while streaming, so saving never needs the whole relation
    resident.  With *rebind* (the default) every tile handle is
    re-pointed at its segment in the new snapshot afterwards and
    becomes clean — i.e. evictable — which is how dirty (freshly
    sealed or updated) tiles re-enter the paging pool.

    *extra* is an optional JSON-serializable dict stored alongside the
    catalog (read back with :func:`read_relation_extra`) — the server
    records its WAL position there so snapshot + position commit
    atomically.
    """
    path = Path(path)
    temp = path.with_name(path.name + ".tmp")
    rebinds: list = []
    with temp.open("wb") as handle:
        handle.write(MAGIC)
        blobs = _BlobWriter(handle)
        catalog = _relation_meta(relation, blobs,
                                 rebinds if rebind else None)
        catalog["blob_index"] = blobs.index
        if extra is not None:
            catalog["extra"] = extra
        footer = json.dumps(catalog, separators=(",", ":")).encode("utf-8")
        handle.write(footer)
        handle.write(struct.pack("<Q", len(footer)))
        handle.write(MAGIC)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(temp, path)
    _fsync_directory(path.parent)
    if rebinds:
        source = _BlobSource(path, blobs.index)
        for tile_handle, tile_meta in rebinds:
            tile_handle.rebind(TileSegment(tile_meta, source))
    return path.stat().st_size


def _open_catalog(path: Path) -> Tuple[dict, List[List[int]]]:
    """Read the catalog of either format version; returns it together
    with the ``[offset, length]`` blob index (computed from the running
    sum of ``blob_sizes`` for v1 files)."""
    size = path.stat().st_size
    trailer_len = 8 + len(MAGIC)
    with path.open("rb") as handle:
        magic = handle.read(len(MAGIC))
        try:
            if magic == MAGIC:
                if size < len(MAGIC) + trailer_len:
                    raise StorageError(f"{path} is truncated")
                handle.seek(size - trailer_len)
                tail = handle.read(trailer_len)
                (footer_len,) = struct.unpack("<Q", tail[:8])
                if tail[8:] != MAGIC:
                    raise StorageError(
                        f"{path} is truncated (footer trailer missing)")
                footer_start = size - trailer_len - footer_len
                if footer_start < len(MAGIC):
                    raise StorageError(f"{path} is truncated")
                handle.seek(footer_start)
                catalog = json.loads(
                    handle.read(footer_len).decode("utf-8"))
                return catalog, catalog["blob_index"]
            if magic == MAGIC_V1:
                (header_len,) = struct.unpack("<Q", handle.read(8))
                raw = handle.read(header_len)
                if len(raw) != header_len:
                    raise StorageError(f"{path} is truncated")
                catalog = json.loads(raw.decode("utf-8"))
                offset = len(MAGIC_V1) + 8 + header_len
                index = []
                for blob_size in catalog["blob_sizes"]:
                    index.append([offset, blob_size])
                    offset += blob_size
                if offset > size:
                    raise StorageError(f"{path} is truncated")
                return catalog, index
        except (struct.error, ValueError, UnicodeDecodeError, KeyError) as exc:
            raise StorageError(f"{path} has a corrupt catalog: {exc}") from exc
    raise StorageError(f"{path} is not a JSON-tiles relation file")


def load_relation(path: Union[str, Path],
                  store: Optional[TileStore] = None) -> Relation:
    """Open a relation written by :func:`save_relation` (either format
    version).  Only headers and statistics are read eagerly; tile
    payloads page in through *store* (default: the process-wide
    :data:`~repro.storage.tilestore.GLOBAL_TILE_STORE`) on first use.
    """
    path = Path(path)
    catalog, index = _open_catalog(path)
    source = _BlobSource(path, index)
    try:
        return _restore_relation(
            catalog, source, store if store is not None else GLOBAL_TILE_STORE)
    except (KeyError, IndexError, ValueError, struct.error) as exc:
        raise StorageError(f"{path} is corrupt: {exc}") from exc


def read_relation_extra(path: Union[str, Path]) -> dict:
    """The ``extra`` dict stored with :func:`save_relation` (reads only
    the catalog, not the blob payloads)."""
    catalog, _index = _open_catalog(Path(path))
    return catalog.get("extra", {})


def save_database(db, directory: Union[str, Path]) -> Dict[str, int]:
    """Persist every (non-child) table of a Database into *directory*;
    returns bytes written per table."""
    from repro.database import Database

    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written = {}
    child_names = set()
    for name, relation in db.tables.items():
        for path_text in relation.children:
            child_names.add(Database._child_table_name(name, path_text))
    seen = set()
    for name, relation in db.tables.items():
        if name in child_names or id(relation) in seen:
            continue
        seen.add(id(relation))
        written[name] = save_relation(relation, directory / f"{name}.jtile")
    _fsync_directory(directory)
    return written


def open_database(directory: Union[str, Path], database_cls=None):
    """Open a directory written by :func:`save_database`."""
    from repro.database import Database

    directory = Path(directory)
    db = (database_cls or Database)()
    for path in sorted(directory.glob("*.jtile")):
        relation = load_relation(path)
        db.register(path.stem, relation)
    return db
