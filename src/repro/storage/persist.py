"""On-disk persistence for relations.

A relation is written as a single ``.jtile`` file:

* magic ``JTIL1`` (5 bytes),
* a little-endian u64 with the length of the JSON *catalog*,
* the catalog: structural metadata (format, config, tiles, extracted
  columns, statistics, bloom filters) where every bulk payload is
  replaced by a blob index,
* the blobs, concatenated in index order (JSONB rows, numpy column
  data, null bitmaps, HyperLogLog registers, bloom bits).

The format is self-contained: ``load_relation`` rebuilds tiles,
headers, statistics and Tiles-* child relations exactly, so a reopened
database answers queries identically (verified by tests).
"""

from __future__ import annotations

import json
import os
import struct
from pathlib import Path
from typing import BinaryIO, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.core.jsonpath import KeyPath
from repro.core.types import ColumnType, JsonType
from repro.errors import StorageError
from repro.stats.bloom import BloomFilter
from repro.stats.hyperloglog import HyperLogLog
from repro.stats.table_stats import (
    ColumnStatistics,
    TableStatistics,
    TileStatistics,
)
from repro.storage.column import ColumnVector, dtype_for
from repro.storage.formats import StorageFormat
from repro.storage.relation import Relation
from repro.tiles.extractor import ExtractionConfig
from repro.tiles.header import ExtractedColumn, TileHeader
from repro.tiles.tile import Tile

MAGIC = b"JTIL1"


class _BlobWriter:
    def __init__(self):
        self.blobs: List[bytes] = []

    def add(self, data: bytes) -> int:
        self.blobs.append(data)
        return len(self.blobs) - 1


def _encode_rows(rows: List[bytes]) -> bytes:
    parts = [struct.pack("<I", len(rows))]
    for row in rows:
        parts.append(struct.pack("<I", len(row)))
        parts.append(row)
    return b"".join(parts)


def _decode_rows(blob: bytes) -> List[bytes]:
    (count,) = struct.unpack_from("<I", blob, 0)
    rows = []
    pos = 4
    for _ in range(count):
        (length,) = struct.unpack_from("<I", blob, pos)
        pos += 4
        rows.append(blob[pos : pos + length])
        pos += length
    return rows


def _encode_object_column(data: np.ndarray) -> bytes:
    parts = [struct.pack("<I", len(data))]
    for item in data:
        if item is None:
            parts.append(b"\xff\xff\xff\xff")
        else:
            encoded = (item if isinstance(item, bytes)
                       else str(item).encode("utf-8"))
            parts.append(struct.pack("<I", len(encoded)))
            parts.append(encoded)
    return b"".join(parts)


def _decode_object_column(blob: bytes) -> np.ndarray:
    (count,) = struct.unpack_from("<I", blob, 0)
    pos = 4
    out = np.empty(count, dtype=object)
    for index in range(count):
        (length,) = struct.unpack_from("<I", blob, pos)
        pos += 4
        if length == 0xFFFFFFFF:
            out[index] = None
        else:
            out[index] = blob[pos : pos + length].decode("utf-8")
            pos += length
    return out


def _column_meta(vector: ColumnVector, blobs: _BlobWriter) -> dict:
    if vector.data.dtype == object:
        data_blob = blobs.add(_encode_object_column(vector.data))
        layout = "object"
    else:
        data_blob = blobs.add(vector.data.tobytes())
        layout = "raw"
    return {
        "type": vector.type.value,
        "layout": layout,
        "length": len(vector),
        "data": data_blob,
        "nulls": blobs.add(np.packbits(vector.null_mask).tobytes()),
    }


def _restore_column(meta: dict, blobs: List[bytes]) -> ColumnVector:
    column_type = ColumnType(meta["type"])
    length = meta["length"]
    if meta["layout"] == "object":
        data = _decode_object_column(blobs[meta["data"]])
    else:
        data = np.frombuffer(blobs[meta["data"]],
                             dtype=dtype_for(column_type)).copy()
    nulls = np.unpackbits(
        np.frombuffer(blobs[meta["nulls"]], dtype=np.uint8),
        count=length).astype(bool) if length else np.zeros(0, dtype=bool)
    return ColumnVector(column_type, data[:length], nulls)


def _sketch_meta(sketch: HyperLogLog, blobs: _BlobWriter) -> dict:
    return {"precision": sketch.precision,
            "registers": blobs.add(sketch.registers.tobytes())}


def _restore_sketch(meta: dict, blobs: List[bytes]) -> HyperLogLog:
    sketch = HyperLogLog(meta["precision"])
    sketch.registers = np.frombuffer(blobs[meta["registers"]],
                                     dtype=np.uint8).copy()
    return sketch


def _histogram_meta(histogram, blobs: _BlobWriter) -> Optional[dict]:
    if histogram is None:
        return None
    return {"boundaries": blobs.add(histogram.boundaries.tobytes()),
            "counts": blobs.add(histogram.counts.tobytes())}


def _restore_histogram(meta: Optional[dict], blobs: List[bytes]):
    if meta is None:
        return None
    from repro.stats.histogram import EquiDepthHistogram

    boundaries = np.frombuffer(blobs[meta["boundaries"]],
                               dtype=np.float64).copy()
    counts = np.frombuffer(blobs[meta["counts"]], dtype=np.float64).copy()
    return EquiDepthHistogram(boundaries, counts)


def _column_stats_meta(stats: ColumnStatistics, blobs: _BlobWriter) -> dict:
    return {
        "sketch": _sketch_meta(stats.sketch, blobs),
        "non_null": stats.non_null_count,
        "min": stats.min_value,
        "max": stats.max_value,
        "histogram": _histogram_meta(stats.histogram, blobs),
    }


def _restore_column_stats(meta: dict, blobs: List[bytes]) -> ColumnStatistics:
    stats = ColumnStatistics()
    stats.sketch = _restore_sketch(meta["sketch"], blobs)
    stats.non_null_count = meta["non_null"]
    stats.min_value = meta["min"]
    stats.max_value = meta["max"]
    stats.histogram = _restore_histogram(meta.get("histogram"), blobs)
    return stats


def _bloom_meta(bloom: BloomFilter, blobs: _BlobWriter) -> dict:
    return {"bits": blobs.add(bloom.bits.tobytes()),
            "num_bits": bloom.num_bits, "num_hashes": bloom.num_hashes}


def _restore_bloom(meta: dict, blobs: List[bytes]) -> BloomFilter:
    bloom = BloomFilter()
    bloom.num_bits = meta["num_bits"]
    bloom.num_hashes = meta["num_hashes"]
    bloom.bits = np.frombuffer(blobs[meta["bits"]], dtype=np.uint8).copy()
    return bloom


def _tile_meta(tile: Tile, blobs: _BlobWriter) -> dict:
    header = tile.header
    columns = []
    for path, column in tile.columns.items():
        meta = header.columns[path]
        columns.append({
            "path": str(path),
            "json_type": meta.json_type.value,
            "column_type": meta.column_type.value,
            "conflicts": meta.has_type_conflicts,
            "nullable": meta.nullable,
            "datetime": meta.is_datetime,
            "vector": _column_meta(column, blobs),
        })
    return {
        "tile_number": header.tile_number,
        "row_count": header.row_count,
        "first_row": tile.first_row,
        "max_array_elements": header.max_array_elements,
        "key_counts": header.key_counts,
        "bloom": _bloom_meta(header.unextracted_paths, blobs),
        "stats_keys": header.statistics.key_counts,
        "stats_columns": {
            str(path): _column_stats_meta(stats, blobs)
            for path, stats in header.statistics.columns.items()
        },
        "columns": columns,
        "rows": blobs.add(_encode_rows(tile.jsonb_rows)),
    }


def _restore_tile(meta: dict, blobs: List[bytes]) -> Tile:
    header = TileHeader(meta["tile_number"], meta["row_count"],
                        max_array_elements=meta["max_array_elements"])
    header.key_counts = dict(meta["key_counts"])
    header.unextracted_paths = _restore_bloom(meta["bloom"], blobs)
    header.statistics = TileStatistics(row_count=meta["row_count"])
    header.statistics.key_counts = dict(meta["stats_keys"])
    for path_text, stats_meta in meta["stats_columns"].items():
        header.statistics.columns[KeyPath.parse(path_text)] = \
            _restore_column_stats(stats_meta, blobs)
    columns = {}
    for column_meta in meta["columns"]:
        path = KeyPath.parse(column_meta["path"])
        header.add_column(ExtractedColumn(
            path=path,
            json_type=JsonType(column_meta["json_type"]),
            column_type=ColumnType(column_meta["column_type"]),
            has_type_conflicts=column_meta["conflicts"],
            nullable=column_meta["nullable"],
            is_datetime=column_meta["datetime"],
        ))
        columns[path] = _restore_column(column_meta["vector"], blobs)
    rows = _decode_rows(blobs[meta["rows"]])
    return Tile(header, columns, rows, meta["first_row"])


def _table_stats_meta(stats: TableStatistics, blobs: _BlobWriter) -> dict:
    return {
        "row_count": stats.row_count,
        "frequencies": {key: list(entry)
                        for key, entry in stats.frequencies._slots.items()},
        "sketches": {
            str(path): {"sketch": _sketch_meta(sketch, blobs), "tile": tile}
            for path, (sketch, tile) in stats._sketches.items()
        },
        "bounds": {str(path): list(bounds)
                   for path, bounds in stats._bounds.items()},
        "histograms": {
            str(path): _histogram_meta(histogram, blobs)
            for path, histogram in stats._histograms.items()
        },
    }


def _restore_table_stats(meta: dict, blobs: List[bytes]) -> TableStatistics:
    stats = TableStatistics()
    stats.row_count = meta["row_count"]
    for key, (count, tile) in meta["frequencies"].items():
        stats.frequencies._slots[key] = (count, tile)
    for path_text, entry in meta["sketches"].items():
        stats._sketches[KeyPath.parse(path_text)] = (
            _restore_sketch(entry["sketch"], blobs), entry["tile"])
    for path_text, bounds in meta["bounds"].items():
        stats._bounds[KeyPath.parse(path_text)] = tuple(bounds)
    for path_text, histogram_meta in meta.get("histograms", {}).items():
        restored = _restore_histogram(histogram_meta, blobs)
        if restored is not None:
            stats._histograms[KeyPath.parse(path_text)] = restored
    return stats


def _config_meta(config: ExtractionConfig) -> dict:
    return {
        "tile_size": config.tile_size,
        "partition_size": config.partition_size,
        "threshold": config.threshold,
        "mining_budget": config.mining_budget,
        "max_array_elements": config.max_array_elements,
        "detect_dates": config.detect_dates,
        "enable_reordering": config.enable_reordering,
    }


def _relation_meta(relation: Relation, blobs: _BlobWriter) -> dict:
    meta = {
        "name": relation.name,
        "format": relation.format.value,
        "config": _config_meta(relation.config),
        "statistics": _table_stats_meta(relation.statistics, blobs),
        "array_paths": [str(path) for path in relation.array_paths],
        "children": {
            path_text: _relation_meta(child, blobs)
            for path_text, child in relation.children.items()
        },
    }
    if relation.text_rows is not None:
        meta["text_rows"] = blobs.add(_encode_rows(
            [row.encode("utf-8") for row in relation.text_rows]))
    else:
        meta["tiles"] = [_tile_meta(tile, blobs) for tile in relation.tiles]
        # pending (unsealed) inserts round-trip as documents instead of
        # being force-sealed into an undersized tile at save time
        buffered = relation.snapshot_insert_buffer()
        if buffered:
            meta["insert_buffer"] = blobs.add(_encode_rows(
                [json.dumps(document, separators=(",", ":")).encode("utf-8")
                 for document in buffered]))
    return meta


def _restore_relation(meta: dict, blobs: List[bytes]) -> Relation:
    config = ExtractionConfig(**meta["config"])
    relation = Relation(meta["name"], StorageFormat(meta["format"]), config)
    relation.statistics = _restore_table_stats(meta["statistics"], blobs)
    relation.array_paths = [KeyPath.parse(p) for p in meta["array_paths"]]
    for path_text, child_meta in meta["children"].items():
        relation.children[path_text] = _restore_relation(child_meta, blobs)
    if "text_rows" in meta:
        relation.text_rows = [row.decode("utf-8")
                              for row in _decode_rows(blobs[meta["text_rows"]])]
    else:
        relation.text_rows = None
        relation.tiles = [_restore_tile(tile_meta, blobs)
                          for tile_meta in meta["tiles"]]
        if "insert_buffer" in meta:
            relation._insert_buffer = [
                json.loads(row.decode("utf-8"))
                for row in _decode_rows(blobs[meta["insert_buffer"]])]
    return relation


def save_relation(relation: Relation, path: Union[str, Path],
                  extra: Optional[dict] = None) -> int:
    """Write the relation (and its Tiles-* children) to *path*;
    returns the number of bytes written.

    The file is written to a temp sibling and atomically renamed into
    place, so a crash mid-save never leaves a torn ``.jtile`` behind.
    *extra* is an optional JSON-serializable dict stored alongside the
    catalog (read back with :func:`read_relation_extra`) — the server
    records its WAL position there so snapshot + position commit
    atomically.
    """
    blobs = _BlobWriter()
    catalog = _relation_meta(relation, blobs)
    catalog["blob_sizes"] = [len(blob) for blob in blobs.blobs]
    if extra is not None:
        catalog["extra"] = extra
    header = json.dumps(catalog, separators=(",", ":")).encode("utf-8")
    path = Path(path)
    temp = path.with_name(path.name + ".tmp")
    with temp.open("wb") as handle:
        handle.write(MAGIC)
        handle.write(struct.pack("<Q", len(header)))
        handle.write(header)
        for blob in blobs.blobs:
            handle.write(blob)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(temp, path)
    return path.stat().st_size


def _read_catalog(handle: BinaryIO, path: Path) -> dict:
    magic = handle.read(len(MAGIC))
    if magic != MAGIC:
        raise StorageError(f"{path} is not a JSON-tiles relation file")
    (header_len,) = struct.unpack("<Q", handle.read(8))
    return json.loads(handle.read(header_len).decode("utf-8"))


def load_relation(path: Union[str, Path]) -> Relation:
    """Read a relation written by :func:`save_relation`."""
    path = Path(path)
    with path.open("rb") as handle:
        catalog = _read_catalog(handle, path)
        blobs: List[bytes] = []
        for size in catalog["blob_sizes"]:
            blob = handle.read(size)
            if len(blob) != size:
                raise StorageError(f"{path} is truncated")
            blobs.append(blob)
    return _restore_relation(catalog, blobs)


def read_relation_extra(path: Union[str, Path]) -> dict:
    """The ``extra`` dict stored with :func:`save_relation` (reads only
    the catalog header, not the blob payloads)."""
    path = Path(path)
    with path.open("rb") as handle:
        catalog = _read_catalog(handle, path)
    return catalog.get("extra", {})


def save_database(db, directory: Union[str, Path]) -> Dict[str, int]:
    """Persist every (non-child) table of a Database into *directory*;
    returns bytes written per table."""
    from repro.database import Database

    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written = {}
    child_names = set()
    for name, relation in db.tables.items():
        for path_text in relation.children:
            child_names.add(Database._child_table_name(name, path_text))
    seen = set()
    for name, relation in db.tables.items():
        if name in child_names or id(relation) in seen:
            continue
        seen.add(id(relation))
        written[name] = save_relation(relation, directory / f"{name}.jtile")
    return written


def open_database(directory: Union[str, Path], database_cls=None):
    """Open a directory written by :func:`save_database`."""
    from repro.database import Database

    directory = Path(directory)
    db = (database_cls or Database)()
    for path in sorted(directory.glob("*.jtile")):
        relation = load_relation(path)
        db.register(path.stem, relation)
    return db
