"""Pure-Python LZ4 block-format codec.

Table 6 of the paper reports that LZ4 compression shrinks the columnar
tile data by a further 2-3x.  No LZ4 binding is available offline, so
this is a from-scratch implementation of the LZ4 *block* format
(https://github.com/lz4/lz4/blob/dev/doc/lz4_Block_format.md):

* a sequence = token byte (literal length high nibble, match length low
  nibble), optional length extension bytes (255-run), literal bytes, a
  2-byte little-endian match offset, optional match length extension;
* minimum match length is 4 (``MINMATCH``); the encoded match length
  stores ``length - 4``;
* the block ends with a literals-only sequence; the last 5 bytes are
  always literals and no match starts within the last 12 bytes.

The compressor uses a greedy single-entry hash table over 4-byte
windows — the same strategy as the LZ4 fast path.
"""

from __future__ import annotations

from repro.errors import StorageError

MINMATCH = 4
_MFLIMIT = 12  # matches must not start within the last 12 bytes
_LASTLITERALS = 5
_HASH_LOG = 16
_MAX_OFFSET = 65535


def _hash4(word: int) -> int:
    return (word * 2654435761) >> (32 - _HASH_LOG) & ((1 << _HASH_LOG) - 1)


def _write_length(out: bytearray, length: int) -> None:
    while length >= 255:
        out.append(255)
        length -= 255
    out.append(length)


def compress(data: bytes) -> bytes:
    """Compress *data* into an LZ4 block."""
    n = len(data)
    out = bytearray()
    if n == 0:
        out.append(0)
        return bytes(out)
    table = [-1] * (1 << _HASH_LOG)
    anchor = 0
    pos = 0
    limit = n - _MFLIMIT
    while pos < limit:
        word = int.from_bytes(data[pos : pos + 4], "little")
        slot = _hash4(word)
        candidate = table[slot]
        table[slot] = pos
        if (
            candidate >= 0
            and pos - candidate <= _MAX_OFFSET
            and data[candidate : candidate + 4] == data[pos : pos + 4]
        ):
            # extend the match forward (must leave the last literals)
            match_end = pos + 4
            cand_end = candidate + 4
            max_end = n - _LASTLITERALS
            while match_end < max_end and data[match_end] == data[cand_end]:
                match_end += 1
                cand_end += 1
            literal_len = pos - anchor
            match_len = match_end - pos - MINMATCH
            token_pos = len(out)
            out.append(0)
            if literal_len >= 15:
                _write_length(out, literal_len - 15)
                token = 15 << 4
            else:
                token = literal_len << 4
            out += data[anchor:pos]
            out += (pos - candidate).to_bytes(2, "little")
            if match_len >= 15:
                token |= 15
                _write_length(out, match_len - 15)
            else:
                token |= match_len
            out[token_pos] = token
            pos = match_end
            anchor = pos
        else:
            pos += 1
    # final literals-only sequence
    literal_len = n - anchor
    token_pos = len(out)
    out.append(0)
    if literal_len >= 15:
        _write_length(out, literal_len - 15)
        out[token_pos] = 15 << 4
    else:
        out[token_pos] = literal_len << 4
    out += data[anchor:]
    return bytes(out)


def decompress(block: bytes, max_size: int = 1 << 31) -> bytes:
    """Decompress an LZ4 block."""
    out = bytearray()
    pos = 0
    n = len(block)
    while pos < n:
        token = block[pos]
        pos += 1
        literal_len = token >> 4
        if literal_len == 15:
            while True:
                if pos >= n:
                    raise StorageError("truncated LZ4 literal length")
                extra = block[pos]
                pos += 1
                literal_len += extra
                if extra != 255:
                    break
        if pos + literal_len > n:
            raise StorageError("truncated LZ4 literals")
        out += block[pos : pos + literal_len]
        pos += literal_len
        if pos == n:
            break  # last sequence has no match
        if pos + 2 > n:
            raise StorageError("truncated LZ4 match offset")
        offset = int.from_bytes(block[pos : pos + 2], "little")
        pos += 2
        if offset == 0 or offset > len(out):
            raise StorageError("invalid LZ4 match offset")
        match_len = (token & 0xF) + MINMATCH
        if (token & 0xF) == 15:
            while True:
                if pos >= n:
                    raise StorageError("truncated LZ4 match length")
                extra = block[pos]
                pos += 1
                match_len += extra
                if extra != 255:
                    break
        if len(out) + match_len > max_size:
            raise StorageError("LZ4 output exceeds size limit")
        start = len(out) - offset
        if offset >= match_len:
            out += out[start : start + match_len]
        else:
            # overlapping match: copy byte by byte (RLE-style)
            for i in range(match_len):
                out.append(out[start + i])
    return bytes(out)


def compression_ratio(data: bytes) -> float:
    """Uncompressed/compressed size ratio (>= 1.0 means it shrank)."""
    if not data:
        return 1.0
    return len(data) / max(1, len(compress(data)))
