"""A memory-bounded LRU cache of resolved tile columns.

The expensive scan path is the per-tuple JSONB fallback
(``TableScan._fallback_all``): a pure-Python traversal of every
document in a tile for one key path.  Columnar-document-store work
(Alkowaileet & Carey) observes that the *decoded columnar
representation* is the asset worth keeping — so we cache the finished
:class:`~repro.storage.column.ColumnVector` per
``(table, tile uid, key path, target type, as_text)`` and serve
slices of it to every later query, sharing across the server's
concurrent connections.

Invalidation rides on tile identity: sealing, tile recomputation and
checkpoint reload all construct *new* ``Tile`` objects with fresh
``uid``s, so their cache entries simply become unreachable and age
out.  The only in-place mutation in the system — ``Relation.update``
patching ``jsonb_rows`` — calls :meth:`invalidate_tile` explicitly.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from typing import Dict, Hashable, Iterable, Optional, Tuple

from repro.storage.column import ColumnVector

_DEFAULT_CAPACITY_MB = 64.0

CacheKey = Tuple[str, int, Hashable, object, bool]


def make_key(table: str, tile_uid: int, path: Hashable, target: object,
             as_text: bool) -> CacheKey:
    return (table, tile_uid, path, target, as_text)


def _vector_bytes(vector: ColumnVector) -> int:
    """Approximate resident size of a cached vector.

    Object columns (strings, JSON values) charge the string payloads
    on top of the pointer array; container values are charged a flat
    estimate rather than walked.
    """
    size = vector.data.nbytes + vector.null_mask.nbytes
    if vector.data.dtype == object:
        for item in vector.data:
            if isinstance(item, str):
                size += 49 + len(item)
            elif item is not None:
                size += 64
    return size


class ResolvedTileCache:
    """Thread-safe byte-bounded LRU of resolved full-tile columns."""

    def __init__(self, capacity_bytes: int = int(_DEFAULT_CAPACITY_MB * 2**20)):
        self._lock = threading.Lock()
        self._entries: "OrderedDict[CacheKey, Tuple[ColumnVector, int]]" = \
            OrderedDict()
        self._bytes = 0
        self.capacity_bytes = capacity_bytes
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        #: called (without the cache lock held) after inserts grew the
        #: cache — the tile store hooks in here so cached columns count
        #: against the same process-wide memory budget as raw tile bytes
        self._overseer = None

    def attach_overseer(self, overseer) -> None:
        """Register the shared-budget callback (the tile store's
        ``enforce``).  Invoked after ``store``/``store_many`` outside
        the cache lock, so the overseer may call :meth:`shrink_to`."""
        self._overseer = overseer

    # ------------------------------------------------------------------

    def lookup(self, key: CacheKey) -> Optional[ColumnVector]:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry[0]

    def lookup_many(
            self,
            keys: Iterable[CacheKey]) -> Dict[CacheKey, ColumnVector]:
        """Probe a batch of keys under one lock acquisition; absent
        keys count a miss each and are simply omitted from the result.
        The late-materializing scan probes every fallback request of a
        tile at once to decide whether any decode pass is needed."""
        with self._lock:
            found: Dict[CacheKey, ColumnVector] = {}
            for key in keys:
                entry = self._entries.get(key)
                if entry is None:
                    self.misses += 1
                else:
                    self._entries.move_to_end(key)
                    self.hits += 1
                    found[key] = entry[0]
            return found

    def store(self, key: CacheKey, vector: ColumnVector) -> None:
        self.store_many([(key, vector)])

    def store_many(
            self,
            entries: Iterable[Tuple[CacheKey, ColumnVector]]) -> None:
        """Insert a batch of entries under one lock acquisition.

        The multi-path shredder resolves every fallback path of a tile
        in one decode pass and fans the results out here — one cache
        entry per (path, type) produced, so a k-path cache miss costs
        one traversal of the tile's documents instead of k.
        """
        sized = [(key, vector, size) for key, vector in entries
                 # a single oversized column would evict everything
                 if (size := _vector_bytes(vector)) <= self.capacity_bytes]
        if not sized:
            return
        with self._lock:
            for key, vector, size in sized:
                old = self._entries.pop(key, None)
                if old is not None:
                    self._bytes -= old[1]
                self._entries[key] = (vector, size)
                self._bytes += size
            while self._bytes > self.capacity_bytes and self._entries:
                _, (_, evicted_size) = self._entries.popitem(last=False)
                self._bytes -= evicted_size
                self.evictions += 1
        if self._overseer is not None:
            self._overseer()

    def shrink_to(self, target_bytes: int) -> int:
        """Evict LRU entries until at most *target_bytes* remain
        resident; the capacity itself is untouched (this is transient
        budget pressure, not a reconfiguration).  Returns the number
        of entries evicted."""
        evicted = 0
        with self._lock:
            while self._bytes > max(0, target_bytes) and self._entries:
                _, (_, evicted_size) = self._entries.popitem(last=False)
                self._bytes -= evicted_size
                self.evictions += 1
                evicted += 1
        return evicted

    # ------------------------------------------------------------------
    # invalidation

    def invalidate_tile(self, tile_uid: int) -> int:
        """Drop every entry for one tile (in-place update path)."""
        return self._invalidate(lambda key: key[1] == tile_uid)

    def invalidate_table(self, table: str) -> int:
        """Drop every entry for one table (drop table / reload)."""
        return self._invalidate(lambda key: key[0] == table)

    def _invalidate(self, predicate) -> int:
        with self._lock:
            stale = [key for key in self._entries if predicate(key)]
            for key in stale:
                _, size = self._entries.pop(key)
                self._bytes -= size
            self.invalidations += len(stale)
            return len(stale)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._bytes = 0

    def set_capacity(self, capacity_bytes: int) -> None:
        with self._lock:
            self.capacity_bytes = capacity_bytes
            while self._bytes > self.capacity_bytes and self._entries:
                _, (_, evicted_size) = self._entries.popitem(last=False)
                self._bytes -= evicted_size
                self.evictions += 1

    # ------------------------------------------------------------------

    @property
    def entry_count(self) -> int:
        return len(self._entries)

    @property
    def used_bytes(self) -> int:
        return self._bytes

    def stats(self) -> Dict[str, object]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "bytes": self._bytes,
                "capacity_bytes": self.capacity_bytes,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
            }

    def reset_stats(self) -> None:
        with self._lock:
            self.hits = self.misses = 0
            self.evictions = self.invalidations = 0


def _default_capacity() -> int:
    raw = os.environ.get("REPRO_TILE_CACHE_MB", "")
    try:
        return int(float(raw) * 2**20)
    except ValueError:
        return int(_DEFAULT_CAPACITY_MB * 2**20)


#: the process-wide cache instance; embedded engines only consult it
#: when ``QueryOptions.tile_cache`` is on (server default), so library
#: users pay nothing unless they opt in
GLOBAL_TILE_CACHE = ResolvedTileCache(_default_capacity())
