"""Storage model variants (the paper's internal competitors, Section 6).

========== ==========================================================
JSON       the raw text string per document; every access re-parses
           (PostgreSQL ``json`` / Hyper behaviour)
JSONB      our binary format per document (Section 5); accesses walk
           the bytes but nothing is materialized
SINEW      Sinew [57]: one *global* schema extracted with a 60 %
           table-frequency cutoff, plus the JSONB fallback
TILES      JSON tiles: per-tile extraction with reordering, headers,
           statistics and skipping
TILES_STAR TILES plus high-cardinality arrays extracted into child
           relations (Section 6.3's Tiles-*)
========== ==========================================================
"""

from __future__ import annotations

import enum


class StorageFormat(enum.Enum):
    JSON = "json"
    JSONB = "jsonb"
    SINEW = "sinew"
    TILES = "tiles"
    TILES_STAR = "tiles*"

    @property
    def has_binary_rows(self) -> bool:
        """Everything but raw text keeps per-document JSONB bytes."""
        return self is not StorageFormat.JSON

    @property
    def extracts_columns(self) -> bool:
        return self in (StorageFormat.SINEW, StorageFormat.TILES,
                        StorageFormat.TILES_STAR)

    @property
    def uses_local_schemas(self) -> bool:
        """TILES detects schemas per tile; SINEW is global."""
        return self in (StorageFormat.TILES, StorageFormat.TILES_STAR)

    @property
    def supports_skipping(self) -> bool:
        """Only tile headers carry the bloom filters needed by
        Section 4.8 skipping."""
        return self.uses_local_schemas
