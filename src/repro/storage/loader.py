"""Bulk loading (Sections 3.2, 6.8).

The loader turns a stream of documents (parsed dicts or JSON text
lines) into a :class:`~repro.storage.relation.Relation`:

1. *parse* the text (when text is given),
2. *write JSONB* — encode every document into the binary fallback,
3. *reorder* each partition of ``partition_size`` tiles (TILES only),
4. *mine + extract* tiles (TILES/SINEW) and collect statistics,
5. for TILES_STAR, detect high-cardinality arrays and load them into
   child relations first.

Each phase is timed into ``relation.load_breakdown`` (Figure 16).
Partitions are disjoint, so ``num_workers > 1`` builds them in parallel
worker processes (Figure 17's parallel loading).
"""

from __future__ import annotations

import json
import time
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.core.jsonpath import KeyPath
from repro.jsonb import encode as jsonb_encode
from repro.mining.dictionary import encode_documents, subset_dictionary
from repro.storage.formats import StorageFormat
from repro.storage.relation import Relation
from repro.tiles.arrays import (
    detect_high_cardinality_arrays,
    extract_array_documents,
    strip_extracted_arrays,
)
from repro.tiles.extractor import (
    ExtractionConfig,
    TileSchema,
    build_tile,
    choose_schema,
)
from repro.tiles.reorder import apply_order, reorder_transactions
from repro.tiles.tile import Tile

DocumentInput = Union[str, dict, list]


def _parse_documents(rows: Sequence[DocumentInput],
                     timings: Dict[str, float]) -> List[object]:
    started = time.perf_counter()
    documents = [json.loads(row) if isinstance(row, str) else row
                 for row in rows]
    timings["parse"] = timings.get("parse", 0.0) + time.perf_counter() - started
    return documents


def _encode_jsonb(documents: Sequence[object],
                  timings: Dict[str, float]) -> List[bytes]:
    started = time.perf_counter()
    encoded = [jsonb_encode(document) for document in documents]
    timings["write_jsonb"] = (timings.get("write_jsonb", 0.0)
                              + time.perf_counter() - started)
    return encoded


def _sinew_schema(documents: Sequence[object],
                  config: ExtractionConfig) -> TileSchema:
    """Sinew's global schema: keys above the table-wide 60 % frequency
    cutoff [57].  Computed from a single-threaded pass over all key
    paths, which is exactly why Sinew's loading is slower (Figure 17)."""
    dictionary, _transactions = encode_documents(
        documents, config.max_array_elements
    )
    return choose_schema(dictionary, len(documents), config)


def _build_partition(args: Tuple) -> Tuple[List[Tile], Dict[str, float]]:
    """Build all tiles of one partition (worker-process entry point).

    The partition's key paths are collected exactly once: the encoded
    transactions drive both the reordering and the per-tile extraction.
    """
    (documents, jsonb_rows, config, first_tile_number, first_row,
     storage_format, schema, detach_rows) = args
    timings: Dict[str, float] = {}
    order = list(range(len(documents)))
    extract = storage_format.extracts_columns
    dictionary = None
    transactions = None
    if extract:
        started = time.perf_counter()
        dictionary, transactions = encode_documents(
            documents, config.max_array_elements)
        timings["mining"] = time.perf_counter() - started
    if storage_format in (StorageFormat.TILES, StorageFormat.TILES_STAR) \
            and config.enable_reordering:
        started = time.perf_counter()
        order = reorder_transactions(transactions, config)
        documents = apply_order(documents, order)
        jsonb_rows = apply_order(jsonb_rows, order)
        transactions = apply_order(transactions, order)
        timings["reorder"] = time.perf_counter() - started
    tiles = []
    tile_size = config.tile_size
    for offset in range(0, len(documents), tile_size):
        chunk = documents[offset : offset + tile_size]
        chunk_rows = jsonb_rows[offset : offset + tile_size]
        tile_number = first_tile_number + offset // tile_size
        encoded = None
        if extract:
            started = time.perf_counter()
            encoded = subset_dictionary(
                dictionary, transactions[offset : offset + tile_size])
            timings["mining"] = (timings.get("mining", 0.0)
                                 + time.perf_counter() - started)
        tiles.append(
            build_tile(chunk, chunk_rows, config, tile_number,
                       first_row + offset,
                       schema=schema if extract and schema else None,
                       mine=extract, timings=timings, encoded=encoded)
        )
    if detach_rows:
        # the parent already holds the JSONB rows; do not pickle them
        # back through the process boundary (it would dominate the
        # parallel-loading cost) — the parent reattaches them by order
        for tile in tiles:
            tile.jsonb_rows = []
    return tiles, timings, order


# partitions handed to forked workers by index (fork shares the parent
# address space, so the documents are not pickled per job)
_WORKER_JOBS: List[Tuple] = []


def _build_partition_by_index(index: int):
    return _build_partition(_WORKER_JOBS[index])


def _run_jobs_parallel(jobs: List[Tuple], num_workers: int):
    import multiprocessing

    global _WORKER_JOBS
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:
        context = multiprocessing.get_context()
        with context.Pool(num_workers) as pool:
            return pool.map(_build_partition, jobs)
    _WORKER_JOBS = jobs
    try:
        with context.Pool(num_workers) as pool:
            return pool.map(_build_partition_by_index, range(len(jobs)))
    finally:
        _WORKER_JOBS = []


def load_documents(
    name: str,
    rows: Sequence[DocumentInput],
    storage_format: StorageFormat = StorageFormat.TILES,
    config: Optional[ExtractionConfig] = None,
    array_paths: Optional[Sequence[KeyPath]] = None,
    auto_detect_arrays: bool = False,
    num_workers: int = 1,
) -> Relation:
    """Bulk-load *rows* (JSON text lines or parsed documents) into a new
    relation stored in *storage_format*.

    ``array_paths`` explicitly lists high-cardinality arrays for
    TILES_STAR; ``auto_detect_arrays`` detects them instead.
    """
    config = config or ExtractionConfig()
    relation = Relation(name, storage_format, config)
    timings: Dict[str, float] = {}
    total_start = time.perf_counter()

    documents = _parse_documents(rows, timings)

    if storage_format == StorageFormat.JSON:
        relation.text_rows = [
            row if isinstance(row, str) else json.dumps(row) for row in rows
        ]
        relation.load_breakdown = timings
        relation.load_breakdown["total"] = time.perf_counter() - total_start
        return relation

    # Tiles-*: pull high-cardinality arrays into child relations first
    if storage_format == StorageFormat.TILES_STAR:
        paths = list(array_paths or [])
        if auto_detect_arrays and not paths:
            paths = [d.path for d in detect_high_cardinality_arrays(documents)]
        relation.array_paths = paths
        for path in paths:
            children = extract_array_documents(documents, path)
            child = load_documents(
                f"{name}.{path}", children, StorageFormat.TILES, config,
                num_workers=num_workers,
            )
            relation.children[str(path)] = child
        if paths:
            documents = [strip_extracted_arrays(doc, paths)
                         for doc in documents]

    jsonb_rows = _encode_jsonb(documents, timings)

    schema: Optional[TileSchema] = None
    if storage_format == StorageFormat.SINEW:
        started = time.perf_counter()
        schema = _sinew_schema(documents, config)
        timings["mining"] = (timings.get("mining", 0.0)
                             + time.perf_counter() - started)

    partition_rows = config.tile_size * config.partition_size
    parallel = num_workers > 1 and len(documents) > partition_rows
    jobs = []
    starts = list(range(0, len(documents), partition_rows))
    for start in starts:
        jobs.append((
            documents[start : start + partition_rows],
            jsonb_rows[start : start + partition_rows],
            config,
            start // config.tile_size,
            start,
            storage_format,
            schema,
            parallel,
        ))

    if parallel:
        results = _run_jobs_parallel(jobs, num_workers)
    else:
        results = [_build_partition(job) for job in jobs]

    for start, (tiles, job_timings, order) in zip(starts, results):
        if parallel:
            partition_jsonb = jsonb_rows[start : start + partition_rows]
            reordered = apply_order(partition_jsonb, order)
            offset = 0
            for tile in tiles:
                tile.jsonb_rows = reordered[
                    offset : offset + tile.header.row_count]
                offset += tile.header.row_count
        # bulk-loaded tiles enter as dirty handles (no on-disk copy
        # until the first checkpoint), so the store never evicts them
        relation.tiles.extend(relation.adopt_tile(tile) for tile in tiles)
        for phase, seconds in job_timings.items():
            timings[phase] = timings.get(phase, 0.0) + seconds
    for tile in relation.tiles:
        relation.statistics.absorb_tile(tile.header.tile_number,
                                        tile.header.statistics)
    relation.load_breakdown = timings
    relation.load_breakdown["total"] = time.perf_counter() - total_start
    return relation


def load_json_lines(
    name: str,
    lines: Iterable[str],
    storage_format: StorageFormat = StorageFormat.TILES,
    **kwargs,
) -> Relation:
    """Convenience wrapper over :func:`load_documents` for ndjson."""
    return load_documents(name, list(lines), storage_format, **kwargs)
