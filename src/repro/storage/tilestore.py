"""Out-of-core tile residency: handles + the byte-budgeted store.

The paper's tiles (Section 3) are a natural paging unit: each one is a
self-contained chunk of tuples with its own columns, JSONB heap and
header.  This module turns them into one.

* A :class:`TileHandle` is what a :class:`~repro.storage.relation.Relation`
  actually holds in ``relation.tiles``.  The *header* (schema, bloom
  filter, zone maps — everything tile skipping needs) is always
  resident; the *payload* (column vectors + JSONB rows) is pinned and
  loaded on demand from the relation's ``.jtile`` segment and unpinned
  after use.  Handles for freshly built tiles (sealing, bulk load,
  recomputation) are *dirty*: they have no clean on-disk copy yet and
  are therefore never evicted; a checkpoint re-binds them to the new
  snapshot and makes them clean.

* The :class:`TileStore` is the process-wide residency manager: an LRU
  of resident payloads with pin counts, bounded by a byte budget
  (``serve --memory-mb`` / ``REPRO_MEMORY_MB``; default unlimited for
  backward compatibility).  The budget is shared with the resolved
  fallback-column cache (:mod:`repro.storage.tile_cache`): cached
  columns and raw tile bytes draw from one pool, with the cache capped
  at a quarter of the budget so derived data can never starve the
  primary representation.  Under pressure the store evicts clean,
  unpinned tiles in LRU order and shrinks the cache; it never evicts
  pinned or dirty state — the budget is a target, not a hard fault.

The store tracks handles through weak references: dropping a table (or
a whole Database) releases its tiles through ordinary garbage
collection, with finalizer callbacks keeping the byte accounting
exact.

Identity: a handle allocates its tile uid once and re-stamps it onto
every reload, so resolved-column cache entries survive evict/reload
cycles — an evicted clean tile is bit-identical to the one re-read
from disk.  In-place mutation (``Relation.update``) marks the handle
dirty first, which both blocks eviction and keeps the stale segment
from ever being served again.
"""

from __future__ import annotations

import os
import threading
import weakref
from collections import OrderedDict
from contextlib import contextmanager
from typing import Dict, List, Optional

from repro.errors import StorageError
from repro.storage.tile_cache import GLOBAL_TILE_CACHE, ResolvedTileCache
from repro.tiles.tile import Tile, new_tile_uid


class TileHandle:
    """One tile of a relation: resident header, demand-loaded payload.

    Handles proxy the read-only surface of :class:`Tile` (``columns``,
    ``jsonb_rows``, ``column`` …) by transparently materializing the
    payload, so code that only inspects a tile keeps working verbatim.
    Hot paths (scans, maintenance) use the explicit protocol instead::

        with handle.pinned(counters) as tile:
            ...  # the payload cannot be evicted in here
    """

    __slots__ = ("header", "first_row", "uid", "table", "owner", "dirty",
                 "_tile", "_segment", "_store", "_pins", "_nbytes",
                 "_load_lock", "__weakref__")

    def __init__(self, header, first_row: int, store: "TileStore",
                 table: str = "", *, tile: Optional[Tile] = None,
                 segment=None, dirty: bool = False):
        self.header = header
        self.first_row = first_row
        self.table = table
        #: the owning Relation (set by ``Relation.adopt_tile``); the
        #: store fires ``evict`` events through it for health tracking
        self.owner = None
        self.dirty = dirty
        self._store = store
        self._segment = segment
        self._tile = tile
        self._pins = 0
        self._load_lock = threading.Lock()
        if tile is not None:
            self.uid = tile.uid
            self._nbytes = _tile_nbytes(tile)
        else:
            self.uid = new_tile_uid()
            self._nbytes = segment.nbytes if segment is not None else 0
        store._register(self)

    # ------------------------------------------------------------------
    # construction

    @classmethod
    def wrap(cls, tile: Tile, store: "TileStore",
             table: str = "") -> "TileHandle":
        """Handle for a freshly built in-memory tile (seal, bulk load,
        recompute).  Dirty: no on-disk copy exists, never evicted."""
        return cls(tile.header, tile.first_row, store, table,
                   tile=tile, dirty=True)

    @classmethod
    def stored(cls, header, first_row: int, segment, store: "TileStore",
               table: str = "") -> "TileHandle":
        """Handle over an on-disk tile segment; payload loads lazily."""
        return cls(header, first_row, store, table, segment=segment)

    # ------------------------------------------------------------------
    # resident metadata

    @property
    def tile_number(self) -> int:
        return self.header.tile_number

    @property
    def row_count(self) -> int:
        return self.header.row_count

    @property
    def resident(self) -> bool:
        return self._tile is not None

    @property
    def pin_count(self) -> int:
        return self._pins

    @property
    def nbytes(self) -> int:
        """Payload bytes this handle charges against the budget while
        resident (on-disk segment size for paged tiles, an in-memory
        estimate for dirty ones)."""
        return self._nbytes

    @property
    def disk_bytes(self) -> int:
        """Bytes of the clean on-disk copy (0 while dirty)."""
        if self.dirty or self._segment is None:
            return 0
        return self._segment.nbytes

    # ------------------------------------------------------------------
    # pin protocol

    def pin(self, counters=None) -> Tile:
        """Materialize the payload (loading from disk if needed) and
        protect it from eviction until :meth:`unpin`.  *counters*, when
        given, receives ``tile_loads`` / ``tile_evictions`` increments
        (the scan's observability hooks)."""
        return self._store.pin(self, counters)

    def unpin(self) -> None:
        self._store.unpin(self)

    @contextmanager
    def pinned(self, counters=None):
        tile = self.pin(counters)
        try:
            yield tile
        finally:
            self.unpin()

    def peek(self) -> Optional[Tile]:
        """The resident payload, or None — never triggers a load."""
        return self._tile

    def mark_dirty(self) -> None:
        """The payload is about to diverge from its on-disk segment
        (in-place update): block eviction until the next checkpoint
        re-binds the handle.  Must be called while pinned."""
        self._store.mark_dirty(self)

    def rebind(self, segment) -> None:
        """A checkpoint wrote this tile into a fresh snapshot: point
        the handle at the new segment and make it clean (evictable)."""
        self._store.rebind(self, segment)

    def _materialize(self) -> Tile:
        """Load without holding a pin (compat proxies below); the
        returned Tile stays valid for the caller by ordinary reference
        even if the handle is evicted afterwards."""
        tile = self.pin()
        self.unpin()
        return tile

    # ------------------------------------------------------------------
    # Tile compatibility surface (read paths; loads on demand)

    @property
    def columns(self):
        return self._materialize().columns

    @property
    def jsonb_rows(self):
        return self._materialize().jsonb_rows

    def column(self, path):
        return self._materialize().column(path)

    def jsonb_value(self, row: int):
        return self._materialize().jsonb_value(row)

    def lookup_fallback(self, row: int, path):
        return self._materialize().lookup_fallback(row, path)

    def row_ids(self):
        return self._materialize().row_ids()

    def size_bytes(self, shared_strings: bool = False) -> int:
        return self._materialize().size_bytes(shared_strings)

    def jsonb_size_bytes(self) -> int:
        return self._materialize().jsonb_size_bytes()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "dirty" if self.dirty else \
            ("resident" if self.resident else "paged-out")
        return (f"<TileHandle {self.table}#{self.tile_number} "
                f"rows={self.row_count} {state} pins={self._pins}>")


def _tile_nbytes(tile: Tile) -> int:
    """Budget charge of an in-memory tile: JSONB heap + standalone
    column footprint (the same accounting ``size_report`` uses)."""
    return tile.jsonb_size_bytes() + tile.size_bytes()


class TileStore:
    """Process-wide byte-budgeted residency manager for tile payloads.

    One LRU covers every relation's paged tiles; the resolved-column
    cache shares the same budget (it is shrunk under pressure, and its
    inserts call back into :meth:`enforce`).  ``budget_bytes=None``
    disables eviction entirely — the fully-resident legacy behavior.
    """

    #: fraction of the budget the resolved-column cache may occupy
    #: before raw tile bytes push it out (derived data yields first)
    CACHE_SHARE = 4

    def __init__(self, budget_bytes: Optional[int] = None,
                 cache: Optional[ResolvedTileCache] = None):
        # RLock: weakref finalizers may fire on this thread mid-section
        self._lock = threading.RLock()
        #: id(handle) -> (weakref, charged_bytes); insertion order = LRU
        self._entries: "OrderedDict[int, tuple]" = OrderedDict()
        self._resident_bytes = 0
        self.budget_bytes = budget_bytes
        self.cache = cache if cache is not None else GLOBAL_TILE_CACHE
        self.loads = 0
        self.load_bytes = 0
        self.evictions = 0
        self.evicted_bytes = 0
        #: handles explicitly released by recompute/reorganize/compact
        #: (distinct from budget evictions: a discarded handle's old
        #: payload can never be served again)
        self.discards = 0
        self.peak_resident_bytes = 0
        self.evictions_by_table: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # registration / accounting

    def _register(self, handle: TileHandle) -> None:
        """Called from TileHandle.__init__; resident (dirty/wrapped)
        handles are charged immediately, paged ones on first load."""
        if handle._tile is None:
            return
        with self._lock:
            self._charge_locked(handle)
            self._note_peak_locked()

    def _charge_locked(self, handle: TileHandle) -> None:
        key = id(handle)
        if key in self._entries:
            return
        ref = weakref.ref(handle, self._make_finalizer(key, handle._nbytes))
        self._entries[key] = (ref, handle._nbytes)
        self._resident_bytes += handle._nbytes

    def _make_finalizer(self, key: int, nbytes: int):
        def finalize(_ref, store_ref=weakref.ref(self)):
            store = store_ref()
            if store is None:
                return
            with store._lock:
                entry = store._entries.pop(key, None)
                if entry is not None:
                    store._resident_bytes -= entry[1]
        return finalize

    def _drop_locked(self, key: int) -> None:
        entry = self._entries.pop(key, None)
        if entry is not None:
            self._resident_bytes -= entry[1]

    def _note_peak_locked(self) -> None:
        if self._resident_bytes > self.peak_resident_bytes:
            self.peak_resident_bytes = self._resident_bytes

    # ------------------------------------------------------------------
    # pin / unpin

    def pin(self, handle: TileHandle, counters=None) -> Tile:
        with self._lock:
            tile = handle._tile
            if tile is not None:
                handle._pins += 1
                if id(handle) in self._entries:
                    self._entries.move_to_end(id(handle))
                return tile
        # Not resident: load outside the store lock so disk reads never
        # serialize the whole process; the per-handle lock dedups
        # concurrent loaders of the same tile.
        with handle._load_lock:
            with self._lock:
                if handle._tile is not None:
                    handle._pins += 1
                    if id(handle) in self._entries:
                        self._entries.move_to_end(id(handle))
                    return handle._tile
                segment = handle._segment
            if segment is None:
                raise StorageError(
                    f"tile {handle.table}#{handle.tile_number} has neither "
                    f"a resident payload nor a backing segment (discarded?)")
            tile = segment.load(handle.header, handle.first_row)
            tile.uid = handle.uid  # stable identity across reloads
            evicted: List[TileHandle] = []
            with self._lock:
                handle._tile = tile
                handle._nbytes = segment.nbytes
                handle._pins += 1
                self._charge_locked(handle)
                self.loads += 1
                self.load_bytes += handle._nbytes
                evicted = self._enforce_locked()
                self._note_peak_locked()
        if counters is not None:
            counters.tile_loads += 1
            counters.tile_evictions += len(evicted)
        self._notify_evicted(evicted)
        return tile

    def unpin(self, handle: TileHandle) -> None:
        evicted: List[TileHandle] = []
        with self._lock:
            if handle._pins > 0:
                handle._pins -= 1
            if self._over_budget_locked():
                # pins released now may unblock a deferred eviction
                evicted = self._enforce_locked()
        self._notify_evicted(evicted)

    def touch(self, handle: TileHandle) -> Tile:
        """Materialize without a lasting pin (compat accessors)."""
        tile = self.pin(handle)
        self.unpin(handle)
        return tile

    # ------------------------------------------------------------------
    # dirty / rebind / discard

    def mark_dirty(self, handle: TileHandle) -> None:
        with self._lock:
            handle.dirty = True

    def rebind(self, handle: TileHandle, segment) -> None:
        evicted: List[TileHandle] = []
        with self._lock:
            handle._segment = segment
            handle.dirty = False
            key = id(handle)
            if key in self._entries:
                # re-charge at the segment's (on-disk) size so paged
                # accounting is uniform whether a tile was loaded or
                # survived from its dirty incarnation
                ref, old = self._entries[key]
                self._entries[key] = (ref, segment.nbytes)
                self._resident_bytes += segment.nbytes - old
            handle._nbytes = segment.nbytes
            evicted = self._enforce_locked()
        self._notify_evicted(evicted)

    def discard(self, handle: TileHandle) -> None:
        """A handle left its relation (drop table, replica reload):
        release its accounting and its payload reference."""
        with self._lock:
            self._drop_locked(id(handle))
            handle._tile = None
            handle._segment = None
            handle.dirty = False
            self.discards += 1

    def retire(self, handle: TileHandle, payload=None) -> None:
        """Like :meth:`discard`, but keeps the payload readable.

        The handle left its relation (LSM merge, recompute,
        reorganize) yet a reader that enumerated an older manifest
        snapshot may still pin it.  The payload is re-attached from
        *payload* (the Tile the replacer drained, if it kept one) or
        loaded now — while the backing segment is still valid — then
        the residency charge and the segment binding are dropped.  The
        handle can no longer be evicted (it has no store entry) or
        reloaded (the next checkpoint may overwrite its segment's
        file); its bytes are freed with the last snapshot reference.
        """
        with handle._load_lock:
            with self._lock:
                tile = handle._tile
                segment = handle._segment
            if tile is None and payload is not None:
                tile = payload
            if tile is None and segment is not None:
                tile = segment.load(handle.header, handle.first_row)
                tile.uid = handle.uid
            with self._lock:
                if handle._tile is None:
                    handle._tile = tile
                self._drop_locked(id(handle))
                handle._segment = None
                handle.dirty = False
                self.discards += 1

    def discard_table(self, table: str) -> int:
        """Drop every resident entry of one table (drop table, server
        reload).  Returns the number of entries released."""
        dropped = 0
        with self._lock:
            for key in list(self._entries):
                ref, _nbytes = self._entries[key]
                handle = ref()
                if handle is None:
                    self._drop_locked(key)
                    continue
                if handle.table == table:
                    self._drop_locked(key)
                    handle._tile = None
                    handle._segment = None
                    handle.dirty = False
                    dropped += 1
        return dropped

    # ------------------------------------------------------------------
    # budget enforcement

    def set_budget(self, budget_bytes: Optional[int]) -> None:
        evicted: List[TileHandle] = []
        with self._lock:
            self.budget_bytes = budget_bytes
            evicted = self._enforce_locked()
        self._notify_evicted(evicted)

    def set_budget_mb(self, megabytes: Optional[float]) -> None:
        self.set_budget(None if megabytes is None or megabytes <= 0
                        else int(megabytes * 2**20))

    def _over_budget_locked(self) -> bool:
        return (self.budget_bytes is not None
                and self._resident_bytes + self.cache.used_bytes
                > self.budget_bytes)

    def _enforce_locked(self) -> List[TileHandle]:
        """Bring resident tile bytes + cached column bytes back under
        the budget.  Order: cap the cache at its share, evict clean
        unpinned tiles LRU-first, then shrink the cache further.
        Pinned and dirty tiles are never touched — with only those
        left, the store stays over budget rather than corrupt."""
        if self.budget_bytes is None:
            return []
        cache_cap = self.budget_bytes // self.CACHE_SHARE
        if self.cache.used_bytes > cache_cap:
            self.cache.shrink_to(cache_cap)
        evicted: List[TileHandle] = []
        if self._over_budget_locked():
            for key in list(self._entries):
                if not self._over_budget_locked():
                    break
                ref, nbytes = self._entries[key]
                handle = ref()
                if handle is None:
                    self._drop_locked(key)
                    continue
                if handle._pins > 0 or handle.dirty \
                        or handle._segment is None:
                    continue
                self._drop_locked(key)
                handle._tile = None
                self.evictions += 1
                self.evicted_bytes += nbytes
                self.evictions_by_table[handle.table] = \
                    self.evictions_by_table.get(handle.table, 0) + 1
                evicted.append(handle)
        if self._over_budget_locked():
            self.cache.shrink_to(
                max(0, self.budget_bytes - self._resident_bytes))
        return evicted

    def enforce(self) -> None:
        """Re-check the budget (the resolved-column cache calls this
        after it grew; lock order is always store -> cache)."""
        with self._lock:
            evicted = self._enforce_locked()
        self._notify_evicted(evicted)

    def _notify_evicted(self, evicted: List[TileHandle]) -> None:
        """Fire owner ``evict`` events outside the store lock (hooks
        may be arbitrary observers; Relation swallows their errors)."""
        for handle in evicted:
            owner = handle.owner
            if owner is not None:
                owner._fire_event("evict", handle)

    # ------------------------------------------------------------------
    # observability

    @property
    def resident_bytes(self) -> int:
        return self._resident_bytes

    def stats(self) -> Dict[str, object]:
        with self._lock:
            pinned = dirty = live = 0
            for ref, _nbytes in self._entries.values():
                handle = ref()
                if handle is None:
                    continue
                live += 1
                if handle._pins > 0:
                    pinned += 1
                if handle.dirty:
                    dirty += 1
            return {
                "budget_bytes": self.budget_bytes,
                "resident_bytes": self._resident_bytes,
                "resident_tiles": live,
                "pinned_tiles": pinned,
                "dirty_tiles": dirty,
                "loads": self.loads,
                "load_bytes": self.load_bytes,
                "evictions": self.evictions,
                "evicted_bytes": self.evicted_bytes,
                "discards": self.discards,
                "peak_resident_bytes": self.peak_resident_bytes,
                "evictions_by_table": dict(self.evictions_by_table),
            }

    def reset_stats(self) -> None:
        with self._lock:
            self.loads = self.load_bytes = 0
            self.evictions = self.evicted_bytes = 0
            self.peak_resident_bytes = self._resident_bytes
            self.evictions_by_table = {}


def _default_budget() -> Optional[int]:
    """Budget from ``REPRO_MEMORY_MB`` (default: unlimited — the
    fully-resident behavior every embedded user already has)."""
    raw = os.environ.get("REPRO_MEMORY_MB", "")
    try:
        value = float(raw)
    except ValueError:
        return None
    if value <= 0:
        return None
    return int(value * 2**20)


#: the process-wide residency manager; shares its budget with the
#: resolved-column cache below
GLOBAL_TILE_STORE = TileStore(_default_budget(), cache=GLOBAL_TILE_CACHE)
GLOBAL_TILE_CACHE.attach_overseer(GLOBAL_TILE_STORE.enforce)
