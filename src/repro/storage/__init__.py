"""Columnar storage: relations of tiles, bulk loading, formats,
compression.

* :class:`StorageFormat` — the five internal competitors of Section 6.
* :func:`load_documents` / :func:`load_json_lines` — bulk loading with
  reordering, extraction and the Figure 16 phase breakdown.
* :class:`Relation` — tiles + statistics + updates (Section 4.7).
* :mod:`repro.storage.compression` — from-scratch LZ4 block codec.
"""

from repro.storage.column import ColumnBuilder, ColumnVector
from repro.storage.formats import StorageFormat
from repro.storage.loader import load_documents, load_json_lines
from repro.storage.persist import (
    load_relation,
    open_database,
    save_database,
    save_relation,
)
from repro.storage.relation import Relation

__all__ = [
    "ColumnBuilder",
    "ColumnVector",
    "Relation",
    "StorageFormat",
    "load_documents",
    "load_json_lines",
    "load_relation",
    "open_database",
    "save_database",
    "save_relation",
]
