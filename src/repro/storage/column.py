"""Typed columnar vectors with null masks.

Extracted tile columns are numpy arrays plus a boolean null mask; the
query engine operates on these vectors batch-at-a-time, which is what
makes materialized scans an order of magnitude faster than per-tuple
JSONB traversal (the paper's central performance argument).
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from repro.core.types import ColumnType
from repro.errors import StorageError

_DTYPE_FOR_TYPE = {
    ColumnType.BOOL: np.bool_,
    ColumnType.INT64: np.int64,
    ColumnType.FLOAT64: np.float64,
    ColumnType.STRING: object,
    ColumnType.DECIMAL: np.float64,
    ColumnType.TIMESTAMP: np.int64,
    ColumnType.JSONB: object,
}


def dtype_for(column_type: ColumnType):
    return _DTYPE_FOR_TYPE[column_type]


class ColumnVector:
    """An immutable typed vector: ``data`` array + ``null_mask``
    (True marks NULL).  Values under the mask are unspecified."""

    __slots__ = ("type", "data", "null_mask")

    def __init__(self, column_type: ColumnType, data: np.ndarray,
                 null_mask: Optional[np.ndarray] = None):
        if null_mask is None:
            null_mask = np.zeros(len(data), dtype=bool)
        if len(null_mask) != len(data):
            raise StorageError(
                f"null mask length mismatch: data has {len(data)} rows, "
                f"null mask has {len(null_mask)}")
        if null_mask.dtype != np.bool_:
            # a non-bool mask (e.g. int 0/1) silently turns boolean
            # indexing into fancy indexing inside the batch kernels —
            # reject it here instead of failing with an opaque numpy
            # broadcast error later
            raise StorageError(
                f"null mask dtype must be bool, got {null_mask.dtype}")
        self.type = column_type
        self.data = data
        self.null_mask = null_mask

    def __len__(self) -> int:
        return len(self.data)

    @classmethod
    def from_values(cls, column_type: ColumnType,
                    values: Iterable[object]) -> "ColumnVector":
        """Build a vector from Python values; ``None`` becomes NULL."""
        builder = ColumnBuilder(column_type)
        for value in values:
            builder.append(value)
        return builder.finish()

    @classmethod
    def all_null(cls, column_type: ColumnType, length: int) -> "ColumnVector":
        data = np.zeros(length, dtype=dtype_for(column_type))
        return cls(column_type, data, np.ones(length, dtype=bool))

    def value(self, row: int) -> object:
        """Python value at *row* (``None`` when NULL)."""
        if self.null_mask[row]:
            return None
        item = self.data[row]
        if self.type in (ColumnType.INT64, ColumnType.TIMESTAMP):
            return int(item)
        if self.type in (ColumnType.FLOAT64, ColumnType.DECIMAL):
            return float(item)
        if self.type == ColumnType.BOOL:
            return bool(item)
        return item

    def to_list(self) -> List[object]:
        return [self.value(row) for row in range(len(self))]

    def take(self, indices: np.ndarray) -> "ColumnVector":
        return ColumnVector(self.type, self.data[indices], self.null_mask[indices])

    def filter(self, keep: np.ndarray) -> "ColumnVector":
        return ColumnVector(self.type, self.data[keep], self.null_mask[keep])

    def non_null_count(self) -> int:
        return int(len(self) - np.count_nonzero(self.null_mask))

    def nbytes(self, shared_strings: bool = False) -> int:
        """Approximate storage footprint (Table 6 accounting).

        With ``shared_strings=True``, variable-length payloads are
        assumed to live in a shared region referenced by 8-byte offsets
        — Umbra's design (Section 4.7: "variable-length data is tracked
        in a separate memory region with offsets"), so an extracted
        string column does not duplicate the JSONB payload.
        """
        if self.data.dtype == object:
            if shared_strings:
                payload = 8 * len(self)
            else:
                payload = sum(
                    len(item.encode("utf-8")) + 4 if isinstance(item, str)
                    else len(item) + 4 if isinstance(item, bytes) else 8
                    for item, is_null in zip(self.data, self.null_mask)
                    if not is_null
                )
        else:
            payload = self.data.nbytes
        return payload + (len(self) + 7) // 8  # null bitmap

    def raw_bytes(self, shared_strings: bool = False) -> bytes:
        """Serialized payload used as compression input (Table 6)."""
        if self.data.dtype == object:
            if shared_strings:
                # offsets into the shared variable-length region
                lengths = np.fromiter(
                    (len(item.encode("utf-8")) if isinstance(item, str)
                     else len(item) if isinstance(item, bytes) else 8
                     for item in self.data),
                    dtype=np.int64, count=len(self.data),
                )
                return np.cumsum(lengths).tobytes()
            parts = []
            for item, is_null in zip(self.data, self.null_mask):
                if is_null:
                    parts.append(b"\x00")
                elif isinstance(item, bytes):
                    parts.append(len(item).to_bytes(4, "little") + item)
                else:
                    encoded = str(item).encode("utf-8")
                    parts.append(len(encoded).to_bytes(4, "little") + encoded)
            return b"".join(parts)
        return self.data.tobytes() + np.packbits(self.null_mask).tobytes()


class ColumnBuilder:
    """Row-at-a-time builder for a :class:`ColumnVector`."""

    __slots__ = ("type", "_values", "_nulls")

    def __init__(self, column_type: ColumnType):
        self.type = column_type
        self._values: List[object] = []
        self._nulls: List[bool] = []

    def append(self, value: object) -> None:
        if value is None:
            self.append_null()
            return
        try:
            coerced = self._coerce(value)
        except (TypeError, ValueError, OverflowError):
            # uncoercible outliers (e.g. a float beyond int64 range
            # cast to an integer column) become SQL NULL
            self.append_null()
            return
        self._values.append(coerced)
        self._nulls.append(False)

    def append_null(self) -> None:
        self._values.append(_ZERO_FOR_TYPE[self.type])
        self._nulls.append(True)

    def _coerce(self, value: object) -> object:
        if self.type == ColumnType.INT64:
            coerced = int(value)
            if not -(2**63) <= coerced < 2**63:
                raise OverflowError("value exceeds int64")
            return coerced
        if self.type in (ColumnType.FLOAT64, ColumnType.DECIMAL):
            return float(value)
        if self.type == ColumnType.BOOL:
            return bool(value)
        if self.type == ColumnType.TIMESTAMP:
            return int(value)
        if self.type == ColumnType.STRING:
            return value if isinstance(value, str) else str(value)
        return value

    def __len__(self) -> int:
        return len(self._values)

    def finish(self) -> ColumnVector:
        data = np.array(self._values, dtype=dtype_for(self.type))
        if len(data) == 0:
            data = np.zeros(0, dtype=dtype_for(self.type))
        null_mask = np.array(self._nulls, dtype=bool)
        return ColumnVector(self.type, data, null_mask)


_ZERO_FOR_TYPE = {
    ColumnType.BOOL: False,
    ColumnType.INT64: 0,
    ColumnType.FLOAT64: 0.0,
    ColumnType.STRING: None,
    ColumnType.DECIMAL: 0.0,
    ColumnType.TIMESTAMP: 0,
    ColumnType.JSONB: None,
}
