"""WAL-shipped read replicas (DESIGN.md §7).

A replica is an ordinary :class:`~repro.server.server.JsonTilesServer`
opened ``read_only`` plus a daemon thread that *pulls* from its
primary over the normal protocol:

* ``stats`` discovers the primary's tables (name, format, extraction
  config) and mirrors them through ``register_table``;
* per table, ``wal_fetch(from_total=<own WAL total>)`` streams the
  primary's WAL records from where the replica left off.  The replica
  applies them through its own ingest path (``apply_replicated``: own
  WAL, own insert buffer, own background sealing), so its on-disk
  layout is produced by exactly the same row sequence as the primary's
  — queries against a caught-up replica are bit-identical to the
  primary.

The resume offset needs no separate bookkeeping file: the replica has
appended *exactly* the primary records it applied to its own WAL, and
``total_records()`` is cumulative across checkpoints and truncation
(the JWAL2 epoch header), so the replica's own WAL total *is* the
primary offset to fetch from.  If the primary has pruned that offset
past its archive window, ``wal_fetch`` answers ``resync: true`` and
the replica re-pages the missing rows with ``fetch_docs`` (row index
equals cumulative record index on the primary — the WAL holds one
record per document).

Both of those identities — replica layout == primary layout, and row
index == cumulative WAL record index — require the primary's physical
row order to equal its WAL (insert) order, which holds only when the
table is extracted with ``enable_reordering=false`` (what the cluster
coordinator forces on every shard table).  A replica therefore
*refuses* to replicate a table whose primary config permits
reordering, recording it under ``refused`` in ``replica_status``;
pass ``allow_reordering=True`` to override knowingly.

Lag accounting: the replica reports per-table ``applied`` counts via
the server's ``replica_status`` hook.  The *coordinator* computes the
lag against its own routed-row counts; the replica's view of the
primary total is informational only (it goes stale the moment polling
pauses).
"""

from __future__ import annotations

import signal
import threading
import time
import warnings
from pathlib import Path
from typing import Dict, Optional, Union

from repro.errors import ReproError
from repro.server.client import ServerClient, ServerError
from repro.server.server import JsonTilesServer


class ReplicaServer:
    """A read-only server that follows one primary."""

    def __init__(self, data_dir: Union[str, Path],
                 primary_host: str, primary_port: int,
                 host: str = "127.0.0.1", port: int = 0, *,
                 poll_interval: float = 0.25,
                 fetch_limit: int = 4096,
                 allow_reordering: bool = False,
                 **server_kwargs):
        server_kwargs.setdefault("maintenance", False)
        self.server = JsonTilesServer(data_dir, host, port,
                                      read_only=True, role="replica",
                                      **server_kwargs)
        self.server.replication_status = self._status
        self.primary_host = primary_host
        self.primary_port = primary_port
        self.poll_interval = poll_interval
        self.fetch_limit = fetch_limit
        self.allow_reordering = allow_reordering
        #: per-table replication progress, guarded by ``_state_lock``
        self._tables: Dict[str, dict] = {}
        #: tables refused because the primary may reorder rows
        self._refused: Dict[str, str] = {}
        self._state_lock = threading.Lock()
        self._paused = threading.Event()
        self._stop = threading.Event()
        self._poll_thread: Optional[threading.Thread] = None
        self._last_poll: Optional[float] = None
        self._last_error: Optional[str] = None
        self._resyncs = 0

    # ------------------------------------------------------------------
    # lifecycle (thread embedding mirrors JsonTilesServer)

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    def start_in_thread(self) -> "ReplicaServer":
        self.server.start_in_thread()
        self._poll_thread = threading.Thread(
            target=self._poll_loop, daemon=True, name="repro-replication")
        self._poll_thread.start()
        return self

    def stop_in_thread(self, checkpoint: bool = True,
                       timeout: float = 30.0) -> None:
        self._stop.set()
        if self._poll_thread is not None:
            self._poll_thread.join(timeout=timeout)
            self._poll_thread = None
        self.server.stop_in_thread(checkpoint=checkpoint, timeout=timeout)

    # -- test/operations hooks -----------------------------------------

    def pause(self) -> None:
        """Stop applying new records (the replica keeps serving reads
        at its current position — how the staleness-fallback tests
        freeze a replica in the past)."""
        self._paused.set()

    def resume(self) -> None:
        self._paused.clear()

    def poll_once(self, client: Optional[ServerClient] = None) -> int:
        """One replication round: mirror the catalog, then ship every
        table forward.  Returns the number of records applied."""
        own = client is None
        if own:
            client = ServerClient(self.primary_host, self.primary_port,
                                  timeout=30.0, retries=0)
        try:
            stats = client.stats()
            applied = 0
            for name, table in sorted(stats.get("tables", {}).items()):
                if "__" in name:
                    continue  # child tables are derived, not replicated
                config = table.get("config") or {}
                if config.get("enable_reordering") \
                        and not self.allow_reordering:
                    # replication and resync both assume the primary's
                    # physical row order equals WAL order; a table that
                    # permits partition reordering breaks that, so
                    # following it would silently diverge
                    self._refuse(name)
                    continue
                applied += self._ship_table(client, name, table)
            with self._state_lock:
                self._last_poll = time.time()
                self._last_error = None
            return applied
        finally:
            if own:
                client.close()

    def _refuse(self, name: str) -> None:
        message = (
            f"refusing to replicate {name!r}: the primary extracts it "
            f"with enable_reordering=true, so its physical row order "
            f"can diverge from WAL order and the replica would "
            f"silently diverge from the primary; recreate the table "
            f"with enable_reordering=false (the cluster coordinator "
            f"does this) or pass allow_reordering=True to override")
        with self._state_lock:
            fresh = name not in self._refused
            self._refused[name] = message
        if fresh:
            warnings.warn(message, RuntimeWarning, stacklevel=2)

    # ------------------------------------------------------------------

    def _poll_loop(self) -> None:
        client: Optional[ServerClient] = None
        while not self._stop.wait(self.poll_interval):
            if self._paused.is_set():
                continue
            try:
                if client is None:
                    client = ServerClient(self.primary_host,
                                          self.primary_port,
                                          timeout=30.0, retries=0)
                    client.hello(role="replica")
                self.poll_once(client)
            except (ServerError, ReproError, OSError) as exc:
                with self._state_lock:
                    self._last_error = str(exc)
                if client is not None:
                    client.close()
                    client = None
        if client is not None:
            client.close()

    def _ship_table(self, client: ServerClient, name: str,
                    primary_table: dict) -> int:
        server = self.server
        relation = server._base.get(name)
        if relation is None:
            relation = server.register_table(
                name, primary_table["format"],
                primary_table.get("config") or {})
        # resume from our own cumulative WAL total: we have appended
        # exactly the primary records we applied
        applied = server.wals.for_table(name).total_records()
        primary_total = primary_table["rows"] + primary_table["pending"]
        shipped = 0
        while applied < primary_total and not self._stop.is_set() \
                and not self._paused.is_set():
            page = client.wal_fetch(name, from_total=applied,
                                    limit=self.fetch_limit)
            if page.get("resync"):
                # the primary pruned our offset past its archive
                # window — fall back to paging documents; on the
                # primary, row index == cumulative WAL record index
                with self._state_lock:
                    self._resyncs += 1
                page = client.fetch_docs(name, start=applied,
                                         limit=self.fetch_limit)
            documents = page["docs"]
            if not documents:
                break
            server.apply_replicated(name, documents)
            applied += len(documents)
            shipped += len(documents)
        with self._state_lock:
            self._tables[name] = {
                "applied": applied,
                "primary_total": max(primary_total, applied),
            }
        return shipped

    def _status(self) -> dict:
        """The server's ``replica_status`` payload."""
        with self._state_lock:
            tables = {
                name: {**entry,
                       "lag": max(0, entry["primary_total"]
                                  - entry["applied"])}
                for name, entry in self._tables.items()
            }
            return {
                "primary": f"{self.primary_host}:{self.primary_port}",
                "paused": self._paused.is_set(),
                "tables": tables,
                "refused": dict(self._refused),
                "last_poll": self._last_poll,
                "last_error": self._last_error,
                "resyncs": self._resyncs,
            }


def run_replica(data_dir: Union[str, Path], primary_host: str,
                primary_port: int, host: str = "127.0.0.1",
                port: int = 7627, **kwargs) -> None:
    """Blocking entry point for ``python -m repro serve-replica``."""
    replica = ReplicaServer(data_dir, primary_host, primary_port,
                            host, port, **kwargs)
    replica.start_in_thread()
    stop = threading.Event()
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            signal.signal(signum, lambda *_: stop.set())
        except ValueError:  # pragma: no cover - non-main thread
            pass
    print(f"repro replica listening on {replica.host}:{replica.port} "
          f"(primary: {primary_host}:{primary_port})", flush=True)
    try:
        stop.wait()
    except KeyboardInterrupt:  # pragma: no cover
        pass
    replica.stop_in_thread()
