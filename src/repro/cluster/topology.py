"""Static cluster topology (DESIGN.md §7).

A cluster is described by one JSON file shared by the operator, the
coordinator and the tooling::

    {
      "shards": [
        {"host": "127.0.0.1", "port": 7701,
         "replicas": [{"host": "127.0.0.1", "port": 7711}]},
        {"host": "127.0.0.1", "port": 7702}
      ],
      "max_replica_lag": 0,
      "read_from_replicas": true
    }

Shard order is load-bearing: shard *i* in the list owns every global
row block ``k`` with ``k % len(shards) == i`` (see
``repro.engine.partial``).  Growing or reordering the shard list
changes where existing rows are expected to live — resharding is out
of scope, so the topology is static for the life of the data.

``max_replica_lag`` is the staleness bound in *WAL records*: a replica
may serve a read only while it has applied all but at most this many
of the records the coordinator has routed to its primary.  ``0``
(default) means a replica must be fully caught up at check time.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Union

from repro.errors import ReproError


class TopologyError(ReproError):
    """The topology file is missing, malformed, or inconsistent."""


@dataclass(frozen=True)
class Endpoint:
    host: str
    port: int

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"


@dataclass(frozen=True)
class ShardSpec:
    primary: Endpoint
    replicas: List[Endpoint] = field(default_factory=list)


@dataclass(frozen=True)
class ClusterTopology:
    shards: List[ShardSpec]
    max_replica_lag: int = 0
    read_from_replicas: bool = True
    #: per-cluster ceiling on the estimated global build-side rows a
    #: broadcast join may ship (DESIGN.md §10); ``None`` defers to the
    #: query's ``broadcast_max_rows`` option
    max_broadcast_rows: Optional[int] = None

    @property
    def shard_count(self) -> int:
        return len(self.shards)

    @classmethod
    def from_dict(cls, raw: dict) -> "ClusterTopology":
        shards_raw = raw.get("shards")
        if not isinstance(shards_raw, list) or not shards_raw:
            raise TopologyError(
                'topology needs a non-empty "shards" list')
        shards = []
        for index, entry in enumerate(shards_raw):
            shards.append(ShardSpec(
                primary=_endpoint(entry, f"shards[{index}]"),
                replicas=[_endpoint(rep, f"shards[{index}].replicas[{j}]")
                          for j, rep in enumerate(
                              entry.get("replicas") or [])],
            ))
        seen = set()
        for spec in shards:
            for endpoint in [spec.primary] + spec.replicas:
                if endpoint in seen:
                    raise TopologyError(
                        f"endpoint {endpoint.address} appears twice in "
                        f"the topology")
                seen.add(endpoint)
        max_broadcast = raw.get("max_broadcast_rows")
        return cls(shards=shards,
                   max_replica_lag=int(raw.get("max_replica_lag", 0)),
                   read_from_replicas=bool(
                       raw.get("read_from_replicas", True)),
                   max_broadcast_rows=(int(max_broadcast)
                                       if max_broadcast is not None
                                       else None))


def _endpoint(entry: dict, where: str) -> Endpoint:
    try:
        return Endpoint(host=str(entry.get("host", "127.0.0.1")),
                        port=int(entry["port"]))
    except (KeyError, TypeError, ValueError) as exc:
        raise TopologyError(f'{where} needs a "port" (and optional '
                            f'"host"): {exc}') from exc


def load_topology(path: Union[str, Path]) -> ClusterTopology:
    path = Path(path)
    try:
        raw = json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise TopologyError(f"cannot read topology file {path}: "
                            f"{exc}") from exc
    except json.JSONDecodeError as exc:
        raise TopologyError(f"topology file {path} is not valid JSON: "
                            f"{exc}") from exc
    return ClusterTopology.from_dict(raw)


def shard_rows(total: int, tile_rows: int, shard_count: int,
               shard_index: int) -> int:
    """How many of the first *total* globally-routed rows live on
    shard *shard_index* under block round-robin routing."""
    full_blocks, remainder = divmod(total, tile_rows)
    if full_blocks > shard_index:
        blocks = (full_blocks - shard_index - 1) // shard_count + 1
    else:
        blocks = 0
    rows = blocks * tile_rows
    if remainder and full_blocks % shard_count == shard_index:
        rows += remainder
    return rows
