"""Horizontal sharding: coordinator, shard fleet and WAL-shipped read
replicas (DESIGN.md §7).

* :mod:`repro.cluster.topology` — the static cluster description.
* :mod:`repro.cluster.coordinator` — the scatter/gather front end;
  speaks the ordinary JSON-lines protocol, so any
  :class:`~repro.server.client.ServerClient` pointed at it is a
  cluster client.
* :mod:`repro.cluster.replica` — a read-only server following one
  primary over ``wal_fetch``.

A shard is just :class:`~repro.server.server.JsonTilesServer` with
``role="shard"`` — the cluster adds no shard-side code beyond the
``partial_query`` / ``fetch_docs`` / ``wal_fetch`` protocol commands
every server carries.
"""

from repro.cluster.coordinator import (
    BackendError,
    BackendLink,
    ClusterCoordinator,
    run_coordinator,
)
from repro.cluster.replica import ReplicaServer, run_replica
from repro.cluster.topology import (
    ClusterTopology,
    Endpoint,
    ShardSpec,
    TopologyError,
    load_topology,
    shard_rows,
)

__all__ = [
    "BackendError",
    "BackendLink",
    "ClusterCoordinator",
    "ClusterTopology",
    "Endpoint",
    "ReplicaServer",
    "ShardSpec",
    "TopologyError",
    "load_topology",
    "run_coordinator",
    "run_replica",
    "shard_rows",
]
