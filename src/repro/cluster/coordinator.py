"""The cluster coordinator: one process, the whole fleet (DESIGN.md §7).

Clients speak the ordinary JSON-lines protocol to the coordinator —
``ServerClient`` pointed at its port is the cluster client.  Behind
it:

* ``insert`` routes documents to shards in round-robin *blocks* of
  ``tile_size`` rows (global rows ``[k*B, (k+1)*B)`` → shard
  ``k % S``), serialized per table so every shard's local row order is
  a deterministic function of the global insert order.  The per-shard
  sub-batches of one request are dispatched concurrently — S WAL
  fsyncs overlap, which is where the cluster's ingest speedup
  comes from.
* ``query`` classifies the bound block (``repro.engine.partial``):
  partial-executable blocks scatter ``partial_query`` to one backend
  per shard (a read replica when fresh enough, see below) and merge
  the returned states in global block order — bit-identical to a
  single-node run.  Two-table equi-joins whose build side is small may
  instead run as shard-side *broadcast joins* (DESIGN.md §10): the
  shards vote on a fragment plan (``plan_fragments``); on unanimity
  the coordinator gathers the build side's surviving rows, broadcasts
  them to every shard's probe fragment, and merges partial results —
  any disagreement, oversized build side or non-wire column declines
  to gather (counted in ``distjoin_declines``).  Everything else falls
  back to *gather*: the referenced tables are paged from the shards,
  rebuilt locally in global row order, and the query runs on the
  rebuild.
* ``flush`` / ``checkpoint`` / ``maintenance`` / ``stats`` fan out to
  every shard and aggregate per-shard sections.

Replica reads: for each shard the coordinator prefers a replica whose
replication lag — computed against the coordinator's own routed-row
counts, so a paused replica cannot under-report — is within the
topology's ``max_replica_lag``; otherwise it falls back to the
primary and counts the fallback.

Failure surface: a backend that is down or mid-crash surfaces as a
protocol error with code ``unavailable`` naming the backend address.
Only idempotent commands are ever re-sent after a dropped connection;
a failed ``insert`` is never retried blindly (the backend may have
applied it even though the ack was lost).  Inserts are not atomic
across shards — an ``unavailable`` insert may have landed on some
shards, so the coordinator marks the table *degraded* and refuses
further inserts and queries against it (code ``degraded``) until the
per-shard row counts re-verify against the canonical block layout;
verification is attempted automatically on the next access and the
flag is visible in ``stats``.  The client must treat the failed batch
as unacknowledged and may re-send only after the table heals.
Admission control: more than ``max_inflight_queries`` concurrent
queries get code ``overloaded`` instead of queueing without bound.
"""

from __future__ import annotations

import asyncio
import json
import re
import signal
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Set, Tuple

from repro.database import Database
from repro.engine.fragments import plan_fragments
from repro.engine.partial import (
    GATHER,
    _WIRE_TYPES,
    classify_block,
    merge_build_pieces,
    merge_counters,
    merge_partial_results,
)
from repro.engine.plan import QueryOptions
from repro.errors import ReproError
from repro.sql.binder import Binder
from repro.sql.parser import parse
from repro.storage.formats import StorageFormat
from repro.tiles.extractor import ExtractionConfig

from repro.server import protocol
from repro.server.executor import options_from_dict, referenced_tables
from repro.cluster.topology import ClusterTopology, Endpoint, shard_rows

_TABLE_NAME = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")
_FORMATS = {fmt.value: fmt for fmt in StorageFormat}

#: ExtractionConfig fields carried in catalogs and shard stats
_CONFIG_FIELDS = ("tile_size", "partition_size", "threshold",
                  "mining_budget", "max_array_elements", "detect_dates",
                  "enable_reordering")

#: commands a BackendLink may re-send after a dropped connection —
#: re-applying any of these cannot change backend state.  ``insert``,
#: ``create_table`` and ``shutdown`` are deliberately absent: once the
#: request bytes have left this process the backend may have applied
#: them even though the ack was lost, and a blind re-send would
#: double-apply the batch and silently corrupt the canonical block
#: layout that routing, partial merges and replica lag depend on.
_IDEMPOTENT_COMMANDS = frozenset({
    "ping", "hello", "query", "explain", "stats", "partial_query",
    "plan_fragments", "fetch_docs", "wal_fetch", "replica_status",
    "maintenance", "flush", "checkpoint",
})


class BackendError(ReproError):
    """A shard/replica call failed; carries the peer's error code."""

    def __init__(self, message: str, code: Optional[str] = None):
        super().__init__(message)
        self.code = code or "backend"


class BackendLink:
    """One persistent connection to one backend, requests serialized
    under an asyncio lock (the protocol is strictly request/response
    per connection).  A dropped connection is re-dialed once per call,
    but only :data:`_IDEMPOTENT_COMMANDS` are ever re-*sent*: a
    non-idempotent request that failed after its bytes were written
    (``insert``!) raises ``BackendError(code="unavailable")``
    immediately, because the backend may have applied it even though
    the ack was lost — the caller must treat it as unacknowledged, per
    the documented insert contract.  An unreachable backend raises the
    same ``unavailable`` error naming the address."""

    def __init__(self, endpoint: Endpoint, timeout: float = 60.0):
        self.endpoint = endpoint
        self.timeout = timeout
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._lock = asyncio.Lock()
        self._request_id = 0

    async def _connect(self) -> None:
        self._reader, self._writer = await asyncio.wait_for(
            asyncio.open_connection(self.endpoint.host, self.endpoint.port,
                                    limit=protocol.MAX_MESSAGE_BYTES),
            timeout=self.timeout)

    async def _close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass
        self._reader = None
        self._writer = None

    async def call(self, command: str,
                   _account: Optional[dict] = None, **fields) -> dict:
        """*_account*, when given, is a mutable ``{"bytes": n}`` the
        call adds its request and response line sizes to — the
        coordinator's ``exchange_bytes`` bookkeeping (broadcast joins
        vs. the gather fallback are compared on exactly this number)."""
        async with self._lock:
            self._request_id += 1
            payload = protocol.encode({"id": self._request_id,
                                       "cmd": command, **fields})
            if len(payload) > protocol.MAX_MESSAGE_BYTES:
                raise BackendError(
                    f"request to {self.endpoint.address} exceeds the "
                    f"protocol frame limit; split the batch",
                    code="protocol")
            if _account is not None:
                _account["bytes"] += len(payload)
            retriable = command in _IDEMPOTENT_COMMANDS
            for attempt in (0, 1):
                sent = False
                try:
                    if self._writer is None:
                        await self._connect()
                    sent = True
                    self._writer.write(payload)
                    await self._writer.drain()
                    line = await asyncio.wait_for(self._reader.readline(),
                                                  timeout=self.timeout)
                except (ConnectionResetError, BrokenPipeError,
                        ConnectionRefusedError, OSError,
                        asyncio.TimeoutError) as exc:
                    await self._close()
                    # retry only if the request provably never reached
                    # the backend (connect failed) or re-applying it is
                    # harmless; a written non-idempotent request may
                    # already be applied, so it must surface as failed
                    if attempt or (sent and not retriable):
                        suffix = ("; the request may have been applied "
                                  "— treat it as unacknowledged"
                                  if sent and not retriable else "")
                        raise BackendError(
                            f"backend {self.endpoint.address} is "
                            f"unavailable: {exc}{suffix}",
                            code="unavailable") from exc
                    continue
                if not line:
                    await self._close()
                    if attempt or not retriable:
                        suffix = ("; the request may have been applied "
                                  "— treat it as unacknowledged"
                                  if not retriable else "")
                        raise BackendError(
                            f"backend {self.endpoint.address} closed the "
                            f"connection{suffix}", code="unavailable")
                    continue
                if _account is not None:
                    _account["bytes"] += len(line)
                response = json.loads(line.decode("utf-8"))
                if not response.get("ok"):
                    raise BackendError(
                        f"{self.endpoint.address}: "
                        f"{response.get('error', 'backend error')}",
                        code=response.get("code"))
                return response
            raise BackendError(  # pragma: no cover - loop always returns
                f"backend {self.endpoint.address} is unavailable",
                code="unavailable")


class ClusterCoordinator:
    """Scatter/gather front end over a static shard fleet."""

    def __init__(self, topology: ClusterTopology,
                 host: str = "127.0.0.1", port: int = 0, *,
                 timeout: float = 60.0,
                 max_inflight_queries: int = 32,
                 default_options: Optional[QueryOptions] = None):
        self.topology = topology
        self.host = host
        self.port = port
        self.timeout = timeout
        self.max_inflight_queries = max_inflight_queries
        self.default_options = default_options or QueryOptions()
        self.links: List[BackendLink] = [
            BackendLink(spec.primary, timeout) for spec in topology.shards]
        self.replica_links: List[List[BackendLink]] = [
            [BackendLink(rep, timeout) for rep in spec.replicas]
            for spec in topology.shards]
        #: per-table routing state: format, config dict, routed-row
        #: count, and the lock serializing routing decisions
        self.tables: Dict[str, dict] = {}
        #: empty relations mirroring the shard catalogs — the binder
        #: runs against these (binding is data-independent)
        self.skeleton = Database()
        #: gather cache: per table, per-shard document lists plus the
        #: row count of the rebuilt relation in ``self._gather_db``
        self._gather_docs: Dict[str, List[List[object]]] = {}
        self._gather_built: Dict[str, int] = {}
        self._gather_db = Database()
        self._gather_lock = asyncio.Lock()

        self._pool = ThreadPoolExecutor(max_workers=4,
                                        thread_name_prefix="repro-coord")
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._conn_tasks: set = set()
        self._thread: Optional[threading.Thread] = None
        self._inflight = 0
        self._counters = {
            "inserts": 0, "queries": 0, "partial_queries": 0,
            "gather_queries": 0, "replica_queries": 0,
            "primary_fallbacks": 0, "overload_rejections": 0,
            "connections_total": 0, "distributed_joins": 0,
            "distjoin_declines": 0, "broadcast_rows": 0,
            "exchange_bytes": 0,
        }
        #: join order of the last distributed-join attempt (stats)
        self._last_join_order: List[str] = []
        #: why the last declined attempt fell back to gather (stats)
        self._last_distjoin_decline: Optional[str] = None
        self._started_at = 0.0

    # ------------------------------------------------------------------
    # lifecycle

    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        await self._handshake()
        await self._discover_tables()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port,
            limit=protocol.MAX_MESSAGE_BYTES)
        self.port = self._server.sockets[0].getsockname()[1]
        self._started_at = time.monotonic()

    async def _handshake(self) -> None:
        """Verify every primary speaks our protocol revision before
        accepting a single client — capability drift fails loud and
        early, not mid-query."""
        responses = await asyncio.gather(
            *[link.call("hello", version=protocol.PROTOCOL_VERSION,
                        role="coordinator") for link in self.links])
        for link, response in zip(self.links, responses):
            peer = response.get("version")
            if peer != protocol.PROTOCOL_VERSION:
                raise BackendError(
                    f"shard {link.endpoint.address} speaks protocol "
                    f"version {peer}, coordinator speaks "
                    f"{protocol.PROTOCOL_VERSION}",
                    code="version_mismatch")
            if response.get("read_only"):
                raise BackendError(
                    f"shard {link.endpoint.address} is read-only (a "
                    f"replica listed as a primary?)", code="topology")

    async def _discover_tables(self) -> None:
        """Rebuild the routing catalog from shard stats: table
        definitions from any shard, routed-row counts as the sum of
        per-shard rows (exact under block round-robin routing)."""
        stats = await asyncio.gather(
            *[link.call("stats") for link in self.links])
        names: Set[str] = set()
        for shard_stats in stats:
            names.update(shard_stats.get("tables", {}))
        for name in sorted(names):
            if "__" in name:
                continue  # Tiles-* child tables are not routable
            entry = None
            count = 0
            for shard_stats in stats:
                table = shard_stats.get("tables", {}).get(name)
                if table is None:
                    continue
                if entry is None:
                    entry = table
                count += table["rows"] + table["pending"]
            self._register_table(name, entry["format"],
                                 entry.get("config") or {}, count)

    def _register_table(self, name: str, format_name: str,
                        config: dict, count: int) -> dict:
        config = {field: config[field] for field in _CONFIG_FIELDS
                  if field in config}
        entry = {
            "format": format_name,
            "config": config,
            "count": count,
            #: bumped on every routed insert / reconciliation — the
            #: gather cache's validity key (``_refresh_gather_table``)
            "epoch": 0,
            "degraded": False,
            "lock": asyncio.Lock(),
        }
        self.tables[name] = entry
        if name not in self.skeleton.tables:
            self.skeleton.create_table(
                name, _FORMATS[format_name],
                ExtractionConfig(**config) if config else None)
        return entry

    async def serve_forever(self) -> None:
        await self._stop_event.wait()
        await self.stop()

    def request_stop(self) -> None:
        self._loop.call_soon_threadsafe(self._stop_event.set)

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            for task in list(self._conn_tasks):
                task.cancel()
            if self._conn_tasks:
                await asyncio.gather(*self._conn_tasks,
                                     return_exceptions=True)
            await self._server.wait_closed()
            self._server = None
        for link in self.links + [rep for reps in self.replica_links
                                  for rep in reps]:
            await link._close()
        self._pool.shutdown(wait=True)

    # -- background-thread embedding (tests, benchmarks) ---------------

    def start_in_thread(self) -> "ClusterCoordinator":
        started = threading.Event()
        failure: list = []

        def runner():
            async def main():
                try:
                    await self.start()
                except Exception as exc:
                    failure.append(exc)
                    started.set()
                    return
                started.set()
                await self.serve_forever()

            asyncio.run(main())

        self._thread = threading.Thread(target=runner, daemon=True,
                                        name="repro-coordinator")
        self._thread.start()
        started.wait()
        if failure:
            raise failure[0]
        return self

    def stop_in_thread(self, timeout: float = 30.0) -> None:
        if self._thread is None:
            return
        self.request_stop()
        self._thread.join(timeout=timeout)
        self._thread = None

    # ------------------------------------------------------------------
    # connection handling (same loop shape as the server)

    def _bump(self, counter: str, amount: int = 1) -> None:
        self._counters[counter] += amount  # event-loop thread only

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        self._bump("connections_total")
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ValueError, asyncio.LimitOverrunError):
                    writer.write(protocol.encode(protocol.error_response(
                        "request line exceeds the message size limit",
                        code="protocol")))
                    await writer.drain()
                    break
                if not line:
                    break
                try:
                    request = protocol.decode_request(line)
                except protocol.ProtocolError as exc:
                    writer.write(protocol.encode(protocol.error_response(
                        str(exc), code="protocol")))
                    await writer.drain()
                    continue
                response = await self._dispatch(request)
                writer.write(protocol.encode(response))
                await writer.drain()
                if request["cmd"] == "shutdown" and response.get("ok"):
                    break
        except (ConnectionResetError, BrokenPipeError,
                asyncio.CancelledError):
            pass
        finally:
            self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _dispatch(self, request: dict) -> dict:
        request_id = request.get("id")
        command = request["cmd"]
        handler = getattr(self, f"_cmd_{command}", None)
        if handler is None:
            return protocol.error_response(
                f"the coordinator does not serve {command!r} (it is a "
                f"shard-side command)", request_id, code="bad_request")
        try:
            return await handler(request, request_id)
        except BackendError as exc:
            return protocol.error_response(str(exc), request_id,
                                           code=exc.code)
        except ReproError as exc:
            return protocol.error_response(str(exc), request_id,
                                           code=type(exc).__name__)
        except (KeyError, TypeError, ValueError) as exc:
            return protocol.error_response(f"bad request: {exc}",
                                           request_id, code="bad_request")

    # -- command handlers ----------------------------------------------

    async def _cmd_ping(self, request: dict, request_id) -> dict:
        return protocol.ok_response(request_id, result="pong")

    async def _cmd_hello(self, request: dict, request_id) -> dict:
        return protocol.ok_response(
            request_id, version=protocol.PROTOCOL_VERSION,
            role="coordinator", read_only=False,
            shards=self.topology.shard_count,
            commands=list(protocol.COMMANDS))

    async def _cmd_create_table(self, request: dict, request_id) -> dict:
        name = request["name"]
        if not isinstance(name, str) or not _TABLE_NAME.match(name) \
                or "__" in name:
            return protocol.error_response(
                f"invalid table name {name!r}", request_id,
                code="bad_request")
        if name in self.tables:
            return protocol.error_response(
                f"table {name!r} already exists", request_id,
                code="SqlBindError")
        format_name = request.get("format", StorageFormat.TILES.value)
        if format_name not in _FORMATS:
            return protocol.error_response(
                f"unknown storage format {format_name!r}", request_id,
                code="bad_request")
        fields = {"name": name, "format": format_name}
        # shard row order is load-bearing (the canonical block
        # layout), so maintenance-time partition reordering is
        # disabled on every shard copy of the table
        fields["config"] = dict(request.get("config") or {},
                                enable_reordering=False)
        await asyncio.gather(*[link.call("create_table", **fields)
                               for link in self.links])
        # read the config back from a shard so defaults the shard
        # filled in (tile_size!) are authoritative for routing
        stats = await self.links[0].call("stats", table=name)
        entry = stats["tables"][name]
        self._register_table(name, entry["format"],
                             entry.get("config") or {}, 0)
        return protocol.ok_response(request_id, table=name,
                                    format=format_name,
                                    shards=self.topology.shard_count)

    async def _cmd_insert(self, request: dict, request_id) -> dict:
        name = request["table"]
        entry = self.tables.get(name)
        if entry is None:
            return protocol.error_response(f"unknown table {name!r}",
                                           request_id, code="bad_request")
        documents = request["docs"] if "docs" in request \
            else [request["doc"]]
        if not isinstance(documents, list):
            return protocol.error_response(
                '"docs" must be a JSON array of documents', request_id,
                code="bad_request")
        documents = [json.loads(doc) if isinstance(doc, str) else doc
                     for doc in documents]
        tile_rows = entry["config"].get("tile_size", 1024)
        shard_count = self.topology.shard_count
        # the per-table lock serializes routing: each shard's local
        # row order must equal the global insert order restricted to
        # its blocks, so batches may not interleave mid-dispatch
        async with entry["lock"]:
            if entry["degraded"]:
                await self._reconcile_table(name, entry)
            base = entry["count"]
            per_shard: List[list] = [[] for _ in range(shard_count)]
            for offset, document in enumerate(documents):
                block = (base + offset) // tile_rows
                per_shard[block % shard_count].append(document)
            calls = [link.call("insert", table=name, docs=chunk)
                     for link, chunk in zip(self.links, per_shard)
                     if chunk]
            responses = await asyncio.gather(*calls,
                                             return_exceptions=True)
            failures = [response for response in responses
                        if isinstance(response, BaseException)]
            if failures:
                # any failed sub-batch may still have been applied
                # shard-side (lost ack), so the routed count can no
                # longer be trusted: degrade the table — traffic is
                # refused until the per-shard counts re-verify against
                # the canonical block layout (``_reconcile_table``)
                entry["degraded"] = True
                raise failures[0]
            entry["count"] = base + len(documents)
            entry["epoch"] += 1
        self._bump("inserts", len(documents))
        pending = max((response.get("pending", 0)
                       for response in responses), default=0)
        return protocol.ok_response(request_id, inserted=len(documents),
                                    pending=pending)

    async def _reconcile_table(self, name: str, entry: dict) -> None:
        """Re-verify a degraded table against shard stats (caller holds
        the entry lock).  After a failed insert fan-out some shards may
        hold sub-batches the coordinator never counted; the table heals
        only if the per-shard row counts match the canonical block
        round-robin for their sum — that sum then becomes the routed
        count.  Any other layout means a routed block is missing from
        the middle of the table, and the coordinator keeps refusing
        traffic (code ``degraded``) instead of returning wrong
        results."""
        stats = await asyncio.gather(
            *[link.call("stats", table=name) for link in self.links])
        counts = []
        for shard_stats in stats:
            table = shard_stats.get("tables", {}).get(name)
            counts.append(table["rows"] + table["pending"]
                          if table else 0)
        total = sum(counts)
        tile_rows = entry["config"].get("tile_size", 1024)
        expected = [shard_rows(total, tile_rows,
                               self.topology.shard_count, index)
                    for index in range(self.topology.shard_count)]
        if counts != expected:
            raise BackendError(
                f"table {name!r} is degraded: a failed insert left the "
                f"shards holding {counts} rows where the block layout "
                f"for {total} total rows requires {expected}; reload "
                f"the table to repair it", code="degraded")
        entry["count"] = total
        entry["epoch"] += 1
        entry["degraded"] = False

    async def _ensure_routable(self, names) -> None:
        """Refuse to serve tables marked degraded by a failed insert,
        after one reconciliation attempt against shard stats."""
        for name in names:
            entry = self.tables.get(name)
            if entry is None or not entry["degraded"]:
                continue
            async with entry["lock"]:
                if entry["degraded"]:
                    await self._reconcile_table(name, entry)

    async def _cmd_flush(self, request: dict, request_id) -> dict:
        fields = {}
        if request.get("table"):
            fields["table"] = request["table"]
        responses = await asyncio.gather(
            *[link.call("flush", **fields) for link in self.links])
        return protocol.ok_response(
            request_id,
            sealed_tables=sum(response.get("sealed_tables", 0)
                              for response in responses))

    async def _cmd_checkpoint(self, request: dict, request_id) -> dict:
        responses = await asyncio.gather(
            *[link.call("checkpoint") for link in self.links])
        written = {
            f"shard{index}": response.get("written", {})
            for index, response in enumerate(responses)
        }
        return protocol.ok_response(request_id, written=written)

    async def _cmd_maintenance(self, request: dict, request_id) -> dict:
        action = request.get("action", "status")
        responses = await asyncio.gather(
            *[link.call("maintenance", action=action)
              for link in self.links])
        shards = {
            f"shard{index}": {key: value for key, value in response.items()
                              if key not in ("ok", "id")}
            for index, response in enumerate(responses)
        }
        return protocol.ok_response(
            request_id,
            enabled=any(response.get("enabled") for response in responses),
            shards=shards)

    async def _cmd_stats(self, request: dict, request_id) -> dict:
        responses = await asyncio.gather(
            *[link.call("stats") for link in self.links])
        replica_status = await asyncio.gather(
            *[self._replica_statuses(index)
              for index in range(self.topology.shard_count)])
        tables: Dict[str, dict] = {}
        for response in responses:
            for name, table in response.get("tables", {}).items():
                agg = tables.setdefault(name, {
                    "format": table["format"], "rows": 0, "pending": 0,
                    "tiles": 0, "wal_total": 0})
                agg["rows"] += table["rows"]
                agg["pending"] += table["pending"]
                agg["tiles"] += table["tiles"]
                agg["wal_total"] += table.get("wal_total", 0)
                lsm = table.get("lsm")
                if lsm:
                    agg_lsm = agg.setdefault("lsm", {
                        "enabled": False, "levels": {}, "counters": {}})
                    agg_lsm["enabled"] = (agg_lsm["enabled"]
                                          or bool(lsm.get("enabled")))
                    for level, report in lsm.get("levels", {}).items():
                        merged = agg_lsm["levels"].setdefault(level, {})
                        for key, value in report.items():
                            if key == "extracted_fraction":
                                # tile-weighted sum; averaged below
                                # once every shard is folded in
                                merged["_fraction_x_tiles"] = \
                                    merged.get("_fraction_x_tiles", 0.0) \
                                    + value * report.get("tiles", 0)
                            else:
                                merged[key] = merged.get(key, 0) + value
                    for key, value in lsm.get("counters", {}).items():
                        agg_lsm["counters"][key] = \
                            agg_lsm["counters"].get(key, 0) + value
        for table in tables.values():
            for report in table.get("lsm", {}).get("levels", {}).values():
                weighted = report.pop("_fraction_x_tiles", 0.0)
                report["extracted_fraction"] = round(
                    weighted / max(1, report.get("tiles", 0)), 4)

        for name, entry in self.tables.items():
            if name in tables:
                tables[name]["routed_rows"] = entry["count"]
                tables[name]["degraded"] = entry["degraded"]
        shards = [
            {"address": link.endpoint.address,
             "tables": response.get("tables", {}),
             "counters": response.get("counters", {}),
             "maintenance": response.get("maintenance"),
             "replicas": replica_status[index]}
            for index, (link, response)
            in enumerate(zip(self.links, responses))
        ]
        counters = dict(self._counters)
        counters["inflight_queries"] = self._inflight
        return protocol.ok_response(
            request_id, role="coordinator", tables=tables,
            counters=counters, shards=shards,
            last_join_order=list(self._last_join_order),
            last_distjoin_decline=self._last_distjoin_decline,
            uptime_s=round(time.monotonic() - self._started_at, 3))

    async def _replica_statuses(self, shard_index: int) -> List[dict]:
        statuses = []
        for link in self.replica_links[shard_index]:
            try:
                response = await link.call("replica_status")
                statuses.append({
                    "address": link.endpoint.address,
                    **{key: value for key, value in response.items()
                       if key not in ("ok", "id")}})
            except BackendError as exc:
                statuses.append({"address": link.endpoint.address,
                                 "error": str(exc)})
        return statuses

    async def _cmd_shutdown(self, request: dict, request_id) -> dict:
        """Stop the coordinator.  ``backends: true`` also asks every
        shard and replica to shut down (best effort, for tooling)."""
        if request.get("backends"):
            checkpoint = bool(request.get("checkpoint", True))
            all_links = [rep for reps in self.replica_links
                         for rep in reps] + self.links
            await asyncio.gather(
                *[link.call("shutdown", checkpoint=checkpoint)
                  for link in all_links],
                return_exceptions=True)
        self._loop.call_soon_threadsafe(self._stop_event.set)
        return protocol.ok_response(request_id, stopping=True)

    # ------------------------------------------------------------------
    # query path

    async def _cmd_query(self, request: dict, request_id) -> dict:
        if self._inflight >= self.max_inflight_queries:
            self._bump("overload_rejections")
            return protocol.error_response(
                f"coordinator overloaded: {self._inflight} queries in "
                f"flight (max_inflight_queries="
                f"{self.max_inflight_queries})", request_id,
                code="overloaded")
        self._inflight += 1
        try:
            sql = request["sql"]
            options_dict = request.get("options") or {}
            options = options_from_dict(options_dict,
                                        self.default_options)
            block = Binder(self.skeleton.tables, options).bind(parse(sql))
            mode = classify_block(block)
            self._bump("queries")
            account = {"bytes": 0}
            if mode == GATHER:
                if options.enable_distributed_joins:
                    response = await self._distributed_join(
                        sql, options, options_dict, block, account,
                        request_id)
                    if response is not None:
                        self._bump("exchange_bytes", account["bytes"])
                        return response
                self._bump("gather_queries")
                result = await self._gather_query(sql, options, account)
                self._bump("exchange_bytes", account["bytes"])
                return protocol.ok_response(
                    request_id, columns=result.columns,
                    rows=[list(row) for row in result.rows],
                    counters=result.counters.as_dict(),
                    cluster={"mode": GATHER,
                             "shards": self.topology.shard_count,
                             "exchange_bytes": account["bytes"]})
            self._bump("partial_queries")
            table = block.sources[0].relation.name
            await self._ensure_routable([table])
            backends, replicas_used = await self._select_backends([table])
            responses = await asyncio.gather(*[
                link.call("partial_query", sql=sql, shard_index=index,
                          shard_count=self.topology.shard_count,
                          mode=mode, options=options_dict,
                          _account=account)
                for index, link in enumerate(backends)
            ])
            pieces = [piece for response in responses
                      for piece in response["pieces"]]
            columns, rows = await self._loop.run_in_executor(
                self._pool, merge_partial_results, block, mode, pieces)
            counters = merge_counters(
                [response["counters"] for response in responses])
            self._bump("exchange_bytes", account["bytes"])
            return protocol.ok_response(
                request_id, columns=columns, rows=rows,
                counters=counters.as_dict(),
                cluster={"mode": mode,
                         "shards": self.topology.shard_count,
                         "replicas_used": replicas_used,
                         "exchange_bytes": account["bytes"]})
        finally:
            self._inflight -= 1

    # -- shard-side broadcast joins (DESIGN.md §10) ---------------------

    async def _distributed_join(self, sql: str, options: QueryOptions,
                                options_dict: dict, block,
                                account: dict,
                                request_id) -> Optional[dict]:
        """Try a two-table equi-join as shard-side broadcast fragments.

        Returns the finished response, or ``None`` to decline to the
        gather path.  The contract is bit-identical-or-decline: any
        doubt — shards disagreeing on the plan, an oversized or
        non-wire build side, an unroutable table — declines.  Declines
        after the shape pre-check count as ``distjoin_declines``;
        blocks that are not broadcast-join shaped at all (unions,
        subqueries, 3+ tables...) pass straight through uncounted.
        """
        local = plan_fragments(block, options)
        if local.join is None:
            if (len(block.sources) >= 2 or block.left_joins
                    or block.subquery_filters):
                # a join the fragment IR can't express (non-equi,
                # 3+ tables, outer, subquery...) — a counted decline
                self._bump("distjoin_declines")
                self._last_distjoin_decline = local.reason
            return None  # plain non-join gather (unions, exotic types)

        def decline(reason: str) -> None:
            self._bump("distjoin_declines")
            self._last_join_order = list(local.join.order)
            self._last_distjoin_decline = reason

        tables = sorted({source.relation.name
                         for source in block.sources})
        await self._ensure_routable(tables)

        # consensus vote: every shard plans from its own statistics;
        # the broadcast runs only if all agree on mode + orientation
        # (primaries only — replica statistics may lag arbitrarily)
        try:
            votes = await asyncio.gather(*[
                link.call("plan_fragments", sql=sql,
                          options=options_dict, _account=account)
                for link in self.links])
        except BackendError:
            decline("plan-unavailable")
            return None
        plans = [vote["plan"] for vote in votes]
        first = plans[0]
        if any(plan.get("mode") == GATHER or "join" not in plan
               for plan in plans):
            decline("shard-declined")
            return None
        joins = [plan["join"] for plan in plans]
        if any(plan["mode"] != first["mode"]
               or join["probe"] != joins[0]["probe"]
               or join["build"] != joins[0]["build"]
               or join["order"] != joins[0]["order"]
               for plan, join in zip(plans, joins)):
            decline("shard-disagreement")
            return None
        mode = first["mode"]
        probe_alias = joins[0]["probe"]
        build_alias = joins[0]["build"]
        order = list(joins[0]["order"])

        # the build side must fit the broadcast budget (sum of the
        # shards' surviving-cardinality estimates) and ship losslessly
        cap = self.topology.max_broadcast_rows
        if cap is None:
            cap = options.broadcast_max_rows
        estimate = sum(join["build_estimate"] for join in joins)
        if estimate > cap:
            decline("build-too-large")
            return None
        build_source = block.source(build_alias)
        if any(request.target not in _WIRE_TYPES
               for request in build_source.requests.values()):
            decline("non-wire-build-column")
            return None

        shard_count = self.topology.shard_count
        built = await asyncio.gather(*[
            link.call("partial_query", sql=sql, shard_index=index,
                      shard_count=shard_count, options=options_dict,
                      fragment={"phase": "build", "build": build_alias},
                      _account=account)
            for index, link in enumerate(self.links)])
        build_rows = merge_build_pieces(
            [piece for response in built
             for piece in response["pieces"]])
        if len(build_rows) > cap:
            decline("build-overflowed-estimate")
            return None
        fragment = {"phase": "probe", "probe": probe_alias,
                    "build": build_alias,
                    "columns": built[0]["columns"],
                    "types": built[0]["types"], "rows": build_rows}
        # the broadcast must fit one protocol frame per shard
        if len(protocol.encode(fragment)) + len(sql) + 4096 \
                > protocol.MAX_MESSAGE_BYTES:
            decline("build-exceeds-frame")
            return None

        probed = await asyncio.gather(*[
            link.call("partial_query", sql=sql, shard_index=index,
                      shard_count=shard_count, mode=mode,
                      options=options_dict, fragment=fragment,
                      _account=account)
            for index, link in enumerate(self.links)])
        pieces = [piece for response in probed
                  for piece in response["pieces"]]
        columns, rows = await self._loop.run_in_executor(
            self._pool, merge_partial_results, block, mode, pieces)
        counters = merge_counters(
            [response["counters"] for response in built + probed])
        counters.broadcast_rows += len(build_rows) * shard_count
        self._bump("distributed_joins")
        self._bump("broadcast_rows", len(build_rows) * shard_count)
        self._last_join_order = order
        return protocol.ok_response(
            request_id, columns=columns, rows=rows,
            counters=counters.as_dict(),
            cluster={"mode": "broadcast_join", "shards": shard_count,
                     "join_order": order, "probe": probe_alias,
                     "build": build_alias,
                     "broadcast_rows": len(build_rows) * shard_count,
                     "exchange_bytes": account["bytes"]})

    async def _cmd_explain(self, request: dict, request_id) -> dict:
        sql = request["sql"]
        options_dict = request.get("options") or {}
        options = options_from_dict(options_dict, self.default_options)
        block = Binder(self.skeleton.tables, options).bind(parse(sql))
        mode = classify_block(block)
        local = plan_fragments(block, options)
        shard_plan = await self.links[0].call("explain", sql=sql,
                                              options=options_dict)
        if mode == GATHER:
            if local.join is not None \
                    and options.enable_distributed_joins:
                strategy = (
                    f"  broadcast join (on unanimous shard vote): "
                    f"build[{local.join.build}] =broadcast=> "
                    f"probe[{local.join.probe}] -> merge; declines "
                    f"fall back to gather\n")
            else:
                strategy = ("  gather: rebuild referenced tables from "
                            "shard documents in global row order, "
                            "execute locally\n")
        else:
            strategy = (
                f"  scatter partial_query to {self.topology.shard_count} "
                f"backends, merge states in global block order\n")
        header = (
            f"Cluster[{self.topology.shard_count} shards, mode={mode}]\n"
            + strategy
            + f"  {local.describe()}\n"
            + "  per-shard plan (shard 0):\n")
        indented = "\n".join("    " + line for line
                             in shard_plan["plan"].splitlines())
        return protocol.ok_response(request_id, plan=header + indented)

    # -- replica selection ---------------------------------------------

    async def _select_backends(self, tables: List[str]
                               ) -> Tuple[List[BackendLink], int]:
        """One backend per shard: a replica within the staleness bound
        if the topology allows, else the primary.  Lag is computed
        against the coordinator's routed-row counts, never against the
        replica's own view of the primary (a paused replica would
        under-report its lag)."""
        backends: List[BackendLink] = []
        replicas_used = 0
        for index, primary in enumerate(self.links):
            chosen = None
            if self.topology.read_from_replicas:
                for link in self.replica_links[index]:
                    if await self._replica_fresh(link, index, tables):
                        chosen = link
                        break
            if chosen is None:
                backends.append(primary)
                if self.replica_links[index] \
                        and self.topology.read_from_replicas:
                    self._bump("primary_fallbacks")
            else:
                backends.append(chosen)
                replicas_used += 1
                self._bump("replica_queries")
        return backends, replicas_used

    async def _replica_fresh(self, link: BackendLink, shard_index: int,
                             tables: List[str]) -> bool:
        try:
            status = await link.call("replica_status")
        except BackendError:
            return False
        if not status.get("replica") or status.get("paused"):
            return False
        applied = status.get("tables", {})
        for name in tables:
            entry = self.tables.get(name)
            if entry is None:
                continue
            expected = shard_rows(entry["count"],
                                  entry["config"].get("tile_size", 1024),
                                  self.topology.shard_count, shard_index)
            behind = expected - int(
                applied.get(name, {}).get("applied", 0))
            if behind > self.topology.max_replica_lag:
                return False
        return True

    # -- gather fallback -----------------------------------------------

    async def _gather_query(self, sql: str, options: QueryOptions,
                            account: Optional[dict] = None):
        # fetch the small side first (routed row counts are the
        # coordinator's cardinalities): its rebuild completes and frees
        # pool capacity while the big side is still paging, and an
        # error on the cheap side aborts before the expensive fetch
        tables = sorted(referenced_tables(parse(sql)) & set(self.tables),
                        key=lambda name: (self.tables[name]["count"],
                                          name))
        await self._ensure_routable(tables)
        async with self._gather_lock:
            for name in tables:
                await self._refresh_gather_table(name, account)
            return await self._loop.run_in_executor(
                self._pool, self._gather_db.sql, sql, options)

    async def _refresh_gather_table(self, name: str,
                                    account: Optional[dict] = None
                                    ) -> None:
        """Bring the local rebuild of *name* up to the routed count.
        Document pages are fetched incrementally per shard (appends
        only ever extend a shard's suffix), but a grown table is
        re-extracted from scratch so its tile boundaries stay exactly
        canonical — an incrementally flushed tail would drift.

        The rebuild is cached per table *epoch* (bumped on every
        routed insert and reconciliation), so repeat gather queries
        against an unchanged table exchange zero bytes."""
        entry = self.tables[name]
        count = entry["count"]
        if self._gather_built.get(name) == (entry["epoch"], count):
            return
        tile_rows = entry["config"].get("tile_size", 1024)
        shard_count = self.topology.shard_count
        cache = self._gather_docs.setdefault(
            name, [[] for _ in range(shard_count)])

        async def fill(shard_index: int) -> None:
            have = len(cache[shard_index])
            need = shard_rows(count, tile_rows, shard_count, shard_index)
            link = self.links[shard_index]
            while have < need:
                page = await link.call(
                    "fetch_docs", table=name, start=have,
                    limit=min(4096, need - have), _account=account)
                documents = page["docs"]
                if not documents:
                    raise BackendError(
                        f"shard {link.endpoint.address} reports only "
                        f"{page['total']} rows of {name!r} but the "
                        f"coordinator routed {need}; was the shard "
                        f"restored from an old backup?", code="topology")
                cache[shard_index].extend(documents)
                have = len(cache[shard_index])

        await asyncio.gather(*[fill(index)
                               for index in range(shard_count)])

        # reassemble global order: block k lives on shard k % S as its
        # local block k // S
        merged: List[object] = []
        cursors = [0] * shard_count
        while len(merged) < count:
            shard_index = (len(merged) // tile_rows) % shard_count
            take = min(tile_rows, count - len(merged))
            start = cursors[shard_index]
            merged.extend(cache[shard_index][start:start + take])
            cursors[shard_index] = start + take

        def rebuild() -> None:
            self._gather_db.drop_table(name)
            relation = self._gather_db.create_table(
                name, _FORMATS[entry["format"]],
                ExtractionConfig(**entry["config"])
                if entry["config"] else None)
            relation.auto_seal = False
            relation.insert_many(merged)
            relation.flush_inserts()

        await self._loop.run_in_executor(self._pool, rebuild)
        self._gather_built[name] = (entry["epoch"], count)


def run_coordinator(topology_path, host: str = "127.0.0.1",
                    port: int = 7618, **kwargs) -> None:
    """Blocking entry point for ``python -m repro serve-coordinator``."""
    from repro.cluster.topology import load_topology

    topology = load_topology(topology_path)

    async def main():
        coordinator = ClusterCoordinator(topology, host, port, **kwargs)
        await coordinator.start()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, coordinator.request_stop)
            except NotImplementedError:  # pragma: no cover
                pass
        print(f"repro coordinator listening on "
              f"{coordinator.host}:{coordinator.port} "
              f"({topology.shard_count} shards)", flush=True)
        await coordinator.serve_forever()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:  # pragma: no cover
        pass
